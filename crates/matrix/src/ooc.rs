//! Out-of-core paged storage: file-backed sources and a bounded page cache.
//!
//! Appendix C.3 of the paper scales DimmWitted to a 49 GB ClueWeb instance —
//! a dataset no single node holds comfortably in DRAM.  The unified storage
//! layer already separates the *canonical source* of a [`crate::DataMatrix`]
//! from its materialized layouts; this module supplies a source that lives
//! on **disk** and pages in on demand:
//!
//! * [`MatrixSource`] — the abstraction every canonical source sits behind:
//!   an ordered sequence of **pages** of raw COO triplets, each page owning
//!   a contiguous, disjoint row range described by a [`PageMeta`] manifest
//!   entry.  Row-disjoint pages are the key invariant: merging duplicates
//!   *within* one page is bit-identical to the global merge restricted to
//!   that page's rows, so every layout built from a page stream is
//!   bit-identical to the one built from the resident triplets.
//! * [`FileBackedSource`] — page-aligned triplet pages on disk with a footer
//!   manifest of per-page row ranges and entry counts, written by the
//!   streaming [`SpillWriter`] (so a generator can emit a larger-than-DRAM
//!   instance without ever holding the full COO form in memory).
//! * [`InMemorySource`] — the resident COO triplets chunked into the same
//!   page shape, used for parity tests and as the degenerate in-memory
//!   backend of the trait.
//! * [`PageCache`] — a hard resident-byte budget over loaded pages with
//!   pin/unpin and least-recently-used eviction.  [`PageCache::pin`] returns
//!   a [`PinnedPage`] guard; pinned pages are never evicted, everything else
//!   is fair game the moment the budget is exceeded.
//!
//! [`crate::DataMatrix::from_source`] materializes CSR/CSC layouts by
//! streaming pages through the cache instead of requiring the whole source
//! resident, and [`crate::DataMatrix::spill_source_to`] converts a resident
//! COO source into a delete-on-drop [`FileBackedSource`] in place.
//!
//! # File format
//!
//! ```text
//! [0 .. 4096)            header: magic "DWPAGE01", rows u64, cols u64 (LE),
//!                        zero-padded to the page alignment
//! [4096 .. manifest)     pages: raw 16-byte triplets (row u32, col u32,
//!                        value-bits u64, LE), each page zero-padded so the
//!                        next page starts on a 4096-byte boundary
//! [manifest .. end-32)   per-page manifest: offset u64, entry count u64,
//!                        row_start u64, row_end u64
//! [end-32 .. end)        footer: total entries u64, page count u64,
//!                        manifest offset u64, magic "DWFOOT01"
//! ```

use crate::coo::merge_triplets;
use crate::{CooMatrix, Entry, Shape};
use std::collections::HashMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Bytes of one serialized triplet (`u32` row + `u32` col + `f64` bits).
pub const ENTRY_BYTES: usize = 16;
/// Default target payload size of one page.
pub const DEFAULT_PAGE_BYTES: usize = 64 * 1024;
/// Pages (and the header) start on multiples of this alignment on disk.
pub const PAGE_ALIGN: u64 = 4096;

const HEADER_MAGIC: &[u8; 8] = b"DWPAGE01";
const FOOTER_MAGIC: &[u8; 8] = b"DWFOOT01";
const FOOTER_BYTES: u64 = 32;

/// Monotonic counter for collision-free spill-file and spill-dir names.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Manifest entry describing one page of a [`MatrixSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMeta {
    /// Byte offset of the page payload (file sources) or 0 for in-memory.
    pub offset: u64,
    /// Number of raw (unmerged) triplets stored in the page.
    pub entries: usize,
    /// First row the page covers.
    pub row_start: usize,
    /// One past the last row the page covers.  Page row ranges are disjoint
    /// and ordered, and together they cover `0..rows`.
    pub row_end: usize,
}

impl PageMeta {
    /// Payload bytes of the page.
    pub fn bytes(&self) -> usize {
        self.entries * ENTRY_BYTES
    }
}

/// A canonical matrix source servable one page of triplets at a time.
///
/// The contract every implementation upholds:
///
/// * pages are ordered by row range, and the ranges are disjoint and cover
///   `0..shape().rows` (a row never spans two pages);
/// * within a page, triplets keep their original push order (so duplicate
///   merging sums values in the same order as the resident COO form);
/// * `read_page` fills `out` with exactly `page_meta(page).entries`
///   triplets, bit-identical on every call.
pub trait MatrixSource: std::fmt::Debug + Send + Sync {
    /// Shape of the matrix the source describes.
    fn shape(&self) -> Shape;

    /// Number of pages.
    fn page_count(&self) -> usize;

    /// Manifest entry of page `page`.
    fn page_meta(&self, page: usize) -> PageMeta;

    /// Read page `page` into `out` (cleared first).
    fn read_page(&self, page: usize, out: &mut Vec<Entry>) -> io::Result<()>;

    /// Total raw triplets across all pages.
    fn total_entries(&self) -> usize {
        (0..self.page_count())
            .map(|p| self.page_meta(p).entries)
            .sum()
    }

    /// Bytes of the full triplet payload (what a resident COO copy costs).
    fn total_bytes(&self) -> usize {
        self.total_entries() * ENTRY_BYTES
    }

    /// The contiguous page index range whose row ranges intersect
    /// `rows.start..rows.end` (row-disjoint ordered pages make this a
    /// simple window over the manifest).
    fn pages_for_rows(&self, start: usize, end: usize) -> std::ops::Range<usize> {
        let count = self.page_count();
        let mut first = count;
        for p in 0..count {
            if self.page_meta(p).row_end > start {
                first = p;
                break;
            }
        }
        let mut last = first;
        while last < count && self.page_meta(last).row_start < end {
            last += 1;
        }
        first..last
    }
}

/// The resident COO triplets behind the [`MatrixSource`] trait, chunked
/// into row-disjoint pages.  The degenerate in-memory backend; also the
/// reference the file format's parity tests compare against.
#[derive(Debug)]
pub struct InMemorySource {
    shape: Shape,
    pages: Vec<Vec<Entry>>,
    metas: Vec<PageMeta>,
}

impl InMemorySource {
    /// Chunk a COO matrix into pages of roughly `page_bytes` each, breaking
    /// only at row boundaries.  Entries are stable-sorted by row first, so
    /// within-row push order (and therefore duplicate-merge order) is
    /// preserved.
    pub fn from_coo(coo: &CooMatrix, page_bytes: usize) -> Self {
        let shape = coo.shape();
        let mut entries = coo.entries().to_vec();
        entries.sort_by_key(|e| e.row);
        let (pages, metas) = paginate(&entries, shape.rows, page_bytes.max(ENTRY_BYTES));
        InMemorySource {
            shape,
            pages,
            metas,
        }
    }
}

/// The one page-boundary rule every source builder shares: cut a page when
/// the buffered payload has reached the page target **and** the incoming
/// entry starts a new row (pages must stay row-disjoint).  Centralizing the
/// rule keeps [`InMemorySource`] and [`SpillWriter`] cutting identical page
/// boundaries — the bit-parity tests between the two depend on it.
#[derive(Debug)]
pub(crate) struct PageCutter {
    page_bytes: usize,
    buffered_entries: usize,
    last_row: usize,
}

impl PageCutter {
    pub(crate) fn new(page_bytes: usize) -> Self {
        PageCutter {
            page_bytes: page_bytes.max(ENTRY_BYTES),
            buffered_entries: 0,
            last_row: 0,
        }
    }

    /// The last row accepted so far (0 before any entry).
    pub(crate) fn last_row(&self) -> usize {
        self.last_row
    }

    /// Whether a page must be cut *before* accepting an entry of `row`;
    /// returns the cut page's exclusive row end.
    pub(crate) fn cut_before(&self, row: usize) -> Option<usize> {
        if row > self.last_row
            && self.buffered_entries > 0
            && self.buffered_entries * ENTRY_BYTES >= self.page_bytes
        {
            Some(self.last_row + 1)
        } else {
            None
        }
    }

    /// Record an accepted entry.
    pub(crate) fn accept(&mut self, row: usize) {
        self.buffered_entries += 1;
        self.last_row = row;
    }

    /// Reset the buffer accounting after a page was cut.
    pub(crate) fn flushed(&mut self) {
        self.buffered_entries = 0;
    }
}

/// Split row-sorted entries into row-disjoint pages covering `0..rows`.
fn paginate(entries: &[Entry], rows: usize, page_bytes: usize) -> (Vec<Vec<Entry>>, Vec<PageMeta>) {
    let mut cutter = PageCutter::new(page_bytes);
    let mut pages = Vec::new();
    let mut metas: Vec<PageMeta> = Vec::new();
    let mut buf: Vec<Entry> = Vec::new();
    let mut page_row_start = 0usize;
    for e in entries {
        let row = e.row as usize;
        if let Some(row_end) = cutter.cut_before(row) {
            metas.push(PageMeta {
                offset: 0,
                entries: buf.len(),
                row_start: page_row_start,
                row_end,
            });
            pages.push(std::mem::take(&mut buf));
            page_row_start = row_end;
            cutter.flushed();
        }
        buf.push(*e);
        cutter.accept(row);
    }
    if !buf.is_empty() {
        metas.push(PageMeta {
            offset: 0,
            entries: buf.len(),
            row_start: page_row_start,
            row_end: rows,
        });
        pages.push(buf);
    } else if let Some(meta) = metas.last_mut() {
        meta.row_end = rows;
    }
    (pages, metas)
}

impl MatrixSource for InMemorySource {
    fn shape(&self) -> Shape {
        self.shape
    }

    fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn page_meta(&self, page: usize) -> PageMeta {
        self.metas[page]
    }

    fn read_page(&self, page: usize, out: &mut Vec<Entry>) -> io::Result<()> {
        out.clear();
        out.extend_from_slice(&self.pages[page]);
        Ok(())
    }
}

/// Streaming writer of the on-disk page format.
///
/// Push triplets in **non-decreasing row order** (the order every generator
/// emits); the writer cuts a page whenever the buffered payload reaches the
/// page target *and* a row boundary is crossed, so no row ever spans two
/// pages.  Nothing but the current page is buffered — a larger-than-DRAM
/// instance spills with O(page) memory.
#[derive(Debug)]
pub struct SpillWriter {
    file: io::BufWriter<std::fs::File>,
    path: PathBuf,
    shape: Shape,
    cutter: PageCutter,
    buf: Vec<Entry>,
    metas: Vec<PageMeta>,
    offset: u64,
    page_row_start: usize,
    total_entries: usize,
}

impl SpillWriter {
    /// Create the spill file and write its header.
    pub fn create(path: impl AsRef<Path>, rows: usize, cols: usize) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        // Read+write: the same handle serves reads once `finish` converts
        // the writer into a `FileBackedSource`.
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut file = io::BufWriter::new(file);
        let mut header = Vec::with_capacity(PAGE_ALIGN as usize);
        header.extend_from_slice(HEADER_MAGIC);
        header.extend_from_slice(&(rows as u64).to_le_bytes());
        header.extend_from_slice(&(cols as u64).to_le_bytes());
        header.resize(PAGE_ALIGN as usize, 0);
        file.write_all(&header)?;
        Ok(SpillWriter {
            file,
            path,
            shape: Shape::new(rows, cols),
            cutter: PageCutter::new(DEFAULT_PAGE_BYTES),
            buf: Vec::new(),
            metas: Vec::new(),
            offset: PAGE_ALIGN,
            page_row_start: 0,
            total_entries: 0,
        })
    }

    /// Override the target page payload size (clamped to one triplet).
    pub fn with_page_bytes(mut self, page_bytes: usize) -> Self {
        self.cutter = PageCutter::new(page_bytes);
        self
    }

    /// The path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one triplet.  Rows must be non-decreasing.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> io::Result<()> {
        if row >= self.shape.rows || col >= self.shape.cols {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "entry ({row}, {col}) outside matrix shape {}x{}",
                    self.shape.rows, self.shape.cols
                ),
            ));
        }
        if row < self.cutter.last_row() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "spill rows must be non-decreasing (got row {row} after {})",
                    self.cutter.last_row()
                ),
            ));
        }
        if let Some(row_end) = self.cutter.cut_before(row) {
            self.flush_page(row_end)?;
        }
        self.buf.push(Entry {
            row: row as u32,
            col: col as u32,
            value,
        });
        self.cutter.accept(row);
        self.total_entries += 1;
        Ok(())
    }

    /// Write the buffered page, padding the file to the page alignment.
    fn flush_page(&mut self, row_end: usize) -> io::Result<()> {
        let payload = self.buf.len() * ENTRY_BYTES;
        for e in &self.buf {
            self.file.write_all(&e.row.to_le_bytes())?;
            self.file.write_all(&e.col.to_le_bytes())?;
            self.file.write_all(&e.value.to_bits().to_le_bytes())?;
        }
        let padded = (payload as u64).div_ceil(PAGE_ALIGN) * PAGE_ALIGN;
        let padding = padded - payload as u64;
        if padding > 0 {
            self.file.write_all(&vec![0u8; padding as usize])?;
        }
        self.metas.push(PageMeta {
            offset: self.offset,
            entries: self.buf.len(),
            row_start: self.page_row_start,
            row_end,
        });
        self.offset += padded;
        self.page_row_start = row_end;
        self.buf.clear();
        self.cutter.flushed();
        Ok(())
    }

    /// Flush the last page, write the manifest + footer, and reopen the
    /// result as a [`FileBackedSource`].
    pub fn finish(mut self) -> io::Result<FileBackedSource> {
        if !self.buf.is_empty() {
            self.flush_page(self.shape.rows)?;
        } else if let Some(meta) = self.metas.last_mut() {
            meta.row_end = self.shape.rows;
        }
        let manifest_offset = self.offset;
        for meta in &self.metas {
            self.file.write_all(&meta.offset.to_le_bytes())?;
            self.file.write_all(&(meta.entries as u64).to_le_bytes())?;
            self.file
                .write_all(&(meta.row_start as u64).to_le_bytes())?;
            self.file.write_all(&(meta.row_end as u64).to_le_bytes())?;
        }
        self.file
            .write_all(&(self.total_entries as u64).to_le_bytes())?;
        self.file
            .write_all(&(self.metas.len() as u64).to_le_bytes())?;
        self.file.write_all(&manifest_offset.to_le_bytes())?;
        self.file.write_all(FOOTER_MAGIC)?;
        let mut file = self.file.into_inner()?;
        file.flush()?;
        Ok(FileBackedSource {
            path: self.path,
            file: Mutex::new(file),
            state: RwLock::new(ManifestState {
                shape: self.shape,
                metas: self.metas,
                total_entries: self.total_entries,
                manifest_offset,
                generation: 0,
            }),
            delete_on_drop: false,
        })
    }
}

/// The parsed footer manifest of a [`FileBackedSource`], cached so readers
/// pay the footer parse once per file *generation* instead of assuming the
/// file is immutable after open: a live writer appends delta pages and
/// rewrites the manifest, and [`FileBackedSource::refresh`] re-reads it.
#[derive(Debug)]
struct ManifestState {
    shape: Shape,
    metas: Vec<PageMeta>,
    total_entries: usize,
    manifest_offset: u64,
    generation: u64,
}

/// A matrix source whose triplet pages live in a file written by
/// [`SpillWriter`]; only the manifest is resident.
///
/// The file is *append-only per page*: sealed page payloads are never
/// rewritten, so a reader holding copies of [`PageMeta`] entries (a live
/// snapshot) can keep serving them through [`FileBackedSource::read_page_at`]
/// even after later appends grew the manifest.
#[derive(Debug)]
pub struct FileBackedSource {
    path: PathBuf,
    file: Mutex<std::fs::File>,
    state: RwLock<ManifestState>,
    delete_on_drop: bool,
}

impl FileBackedSource {
    /// Open an existing spill file, validating header and footer.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::File::open(&path)?;
        let (rows, cols) = Self::read_header(&mut file)?;
        let (total_entries, page_count, manifest_offset) = Self::read_footer(&mut file)?;
        let metas = Self::read_manifest(&mut file, page_count, manifest_offset)?;
        Ok(FileBackedSource {
            path,
            file: Mutex::new(file),
            state: RwLock::new(ManifestState {
                shape: Shape::new(rows, cols),
                metas,
                total_entries,
                manifest_offset,
                generation: 0,
            }),
            delete_on_drop: false,
        })
    }

    fn read_header(file: &mut std::fs::File) -> io::Result<(usize, usize)> {
        file.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; 24];
        file.read_exact(&mut header)?;
        if &header[0..8] != HEADER_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a DimmWitted page file (bad header magic)",
            ));
        }
        let rows = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
        let cols = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
        Ok((rows, cols))
    }

    fn read_footer(file: &mut std::fs::File) -> io::Result<(usize, usize, u64)> {
        file.seek(SeekFrom::End(-(FOOTER_BYTES as i64)))?;
        let mut footer = [0u8; FOOTER_BYTES as usize];
        file.read_exact(&mut footer)?;
        if &footer[24..32] != FOOTER_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated DimmWitted page file (bad footer magic)",
            ));
        }
        let total_entries = u64::from_le_bytes(footer[0..8].try_into().unwrap()) as usize;
        let page_count = u64::from_le_bytes(footer[8..16].try_into().unwrap()) as usize;
        let manifest_offset = u64::from_le_bytes(footer[16..24].try_into().unwrap());
        Ok((total_entries, page_count, manifest_offset))
    }

    fn read_manifest(
        file: &mut std::fs::File,
        page_count: usize,
        manifest_offset: u64,
    ) -> io::Result<Vec<PageMeta>> {
        file.seek(SeekFrom::Start(manifest_offset))?;
        let mut manifest = vec![0u8; page_count * 32];
        file.read_exact(&mut manifest)?;
        Ok(manifest
            .chunks_exact(32)
            .map(|c| PageMeta {
                offset: u64::from_le_bytes(c[0..8].try_into().unwrap()),
                entries: u64::from_le_bytes(c[8..16].try_into().unwrap()) as usize,
                row_start: u64::from_le_bytes(c[16..24].try_into().unwrap()) as usize,
                row_end: u64::from_le_bytes(c[24..32].try_into().unwrap()) as usize,
            })
            .collect())
    }

    /// Re-read the footer manifest if a writer appended pages since the
    /// manifest was last parsed; returns whether anything changed.
    ///
    /// The unchanged path costs a single 32-byte footer read (a live seal
    /// rewrites the footer *last*, so an unchanged manifest offset + page
    /// count means the cached parse is still current).  When the file grew,
    /// the manifest and the header row count are re-read and the generation
    /// counter bumps.
    pub fn refresh(&self) -> io::Result<bool> {
        let mut file = self.file.lock().expect("spill file lock poisoned");
        let (total_entries, page_count, manifest_offset) = Self::read_footer(&mut file)?;
        {
            let state = self.state.read().expect("manifest lock poisoned");
            if state.manifest_offset == manifest_offset && state.metas.len() == page_count {
                return Ok(false);
            }
        }
        let (rows, cols) = Self::read_header(&mut file)?;
        let metas = Self::read_manifest(&mut file, page_count, manifest_offset)?;
        drop(file);
        let mut state = self.state.write().expect("manifest lock poisoned");
        state.shape = Shape::new(rows, cols);
        state.metas = metas;
        state.total_entries = total_entries;
        state.manifest_offset = manifest_offset;
        state.generation += 1;
        Ok(true)
    }

    /// How many times [`refresh`](Self::refresh) observed an appended
    /// manifest (0 right after open).
    pub fn generation(&self) -> u64 {
        self.state
            .read()
            .expect("manifest lock poisoned")
            .generation
    }

    /// Byte offset where the current manifest starts — also where the next
    /// appended page's payload goes.
    pub fn manifest_offset(&self) -> u64 {
        self.state
            .read()
            .expect("manifest lock poisoned")
            .manifest_offset
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Remove the backing file when the source is dropped (session spills
    /// use this so tests and runs never leave spill files behind).
    pub fn delete_on_drop(mut self) -> Self {
        self.delete_on_drop = true;
        self
    }

    /// A copy of the current manifest, for one-pass statistics, diagnostics,
    /// and live snapshots that must keep serving a frozen page set.
    pub fn manifest(&self) -> Vec<PageMeta> {
        self.state
            .read()
            .expect("manifest lock poisoned")
            .metas
            .clone()
    }

    /// Read the page a (possibly historical) manifest entry describes.
    /// Sealed page payloads are immutable, so this stays valid even after
    /// later appends replaced the entry's slot in the current manifest.
    pub fn read_page_at(&self, meta: &PageMeta, out: &mut Vec<Entry>) -> io::Result<()> {
        let mut bytes = vec![0u8; meta.bytes()];
        {
            let mut file = self.file.lock().expect("spill file lock poisoned");
            file.seek(SeekFrom::Start(meta.offset))?;
            file.read_exact(&mut bytes)?;
        }
        out.clear();
        out.reserve(meta.entries);
        for c in bytes.chunks_exact(ENTRY_BYTES) {
            out.push(Entry {
                row: u32::from_le_bytes(c[0..4].try_into().unwrap()),
                col: u32::from_le_bytes(c[4..8].try_into().unwrap()),
                value: f64::from_bits(u64::from_le_bytes(c[8..16].try_into().unwrap())),
            });
        }
        Ok(())
    }
}

impl Drop for FileBackedSource {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl MatrixSource for FileBackedSource {
    fn shape(&self) -> Shape {
        self.state.read().expect("manifest lock poisoned").shape
    }

    fn page_count(&self) -> usize {
        self.state
            .read()
            .expect("manifest lock poisoned")
            .metas
            .len()
    }

    fn page_meta(&self, page: usize) -> PageMeta {
        self.state.read().expect("manifest lock poisoned").metas[page]
    }

    fn total_entries(&self) -> usize {
        self.state
            .read()
            .expect("manifest lock poisoned")
            .total_entries
    }

    fn read_page(&self, page: usize, out: &mut Vec<Entry>) -> io::Result<()> {
        let meta = self.page_meta(page);
        self.read_page_at(&meta, out)
    }
}

/// Counters a [`PageCache`] accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that had to load from the source (page faults).
    pub faults: u64,
    /// Bytes read from the source across all faults and prefetches.
    pub io_bytes: u64,
    /// Pages evicted to stay within the budget.
    pub evictions: u64,
    /// Bytes of pages currently resident.
    pub resident_bytes: usize,
    /// High-water mark of `resident_bytes`.
    pub peak_resident_bytes: usize,
    /// Pages inserted ahead of use by a [`Prefetcher`].
    pub prefetched: u64,
    /// Cache hits served from a page a [`Prefetcher`] inserted — IO that was
    /// overlapped with compute instead of blocking a consumer (a subset of
    /// `hits`).
    pub prefetch_hits: u64,
    /// Delta pages a live writer sealed and appended to the source (zero for
    /// static sources; bumped through the [`IngestCounters`] a
    /// [`PagedSource`] can carry).
    pub delta_appends: u64,
    /// Compaction passes that merged accumulated delta pages into a fresh
    /// base file (also carried by [`IngestCounters`]).
    pub compactions: u64,
}

/// Shared streaming-ingest counters: a live source bumps them as it seals
/// delta pages and compacts, and every [`PagedSource`] snapshot holding the
/// same `Arc` surfaces them merged into its [`CacheStats`] — so a session's
/// per-epoch cache-delta accounting sees appends/compactions alongside
/// faults even though each adopted snapshot owns a fresh cache.
#[derive(Debug, Default)]
pub struct IngestCounters {
    /// Delta pages sealed+appended so far.
    pub delta_appends: AtomicU64,
    /// Compaction passes run so far.
    pub compactions: AtomicU64,
}

#[derive(Debug)]
struct Slot {
    data: Arc<Vec<Entry>>,
    bytes: usize,
    pins: usize,
    last_used: u64,
    /// Inserted by a prefetcher and not yet consumed.  Protected from
    /// prefetch-admission eviction (it is exactly the page about to be
    /// pinned) and counted as a prefetch hit when first served.
    prefetched: bool,
}

#[derive(Debug, Default)]
struct CacheInner {
    slots: HashMap<usize, Slot>,
    tick: u64,
    stats: CacheStats,
}

/// A bounded cache of loaded pages with pin/unpin and LRU eviction, safe
/// under concurrent consumers and a [`Prefetcher`].
///
/// The budget is a hard bound on *unpinned* residency: an insert evicts
/// least-recently-used unpinned pages until the new page fits.  Pinned pages
/// are never evicted, so the true invariant is
/// `resident_bytes <= max(budget, pinned bytes + one page)` — callers that
/// pin one page at a time (every streaming pass in this crate) stay within
/// the budget whenever the budget holds at least two pages.
///
/// Two admission policies share the budget.  A consumer fault (`pin`) must
/// succeed, so it evicts any unpinned page, preferring pages no prefetcher
/// is staging.  A prefetch insert (`prefetch`) is best-effort: it only
/// evicts pages that are neither pinned nor freshly prefetched — it never
/// cannibalizes the window it is building — and simply skips the insert
/// when nothing evictable remains.
#[derive(Debug)]
pub struct PageCache {
    budget: usize,
    inner: Mutex<CacheInner>,
    /// Signalled on every served pin, so a prefetcher can pace itself
    /// against the consuming stream.
    progress: Condvar,
}

impl PageCache {
    /// A cache bounded to `budget_bytes` of resident page payload.
    pub fn new(budget_bytes: usize) -> Self {
        PageCache {
            budget: budget_bytes,
            inner: Mutex::new(CacheInner::default()),
            progress: Condvar::new(),
        }
    }

    /// The resident-byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("page cache lock poisoned").stats
    }

    /// Total pins served so far (hits + faults) — the consumer-progress
    /// clock a [`Prefetcher`] paces against.
    pub fn pins_served(&self) -> u64 {
        let inner = self.inner.lock().expect("page cache lock poisoned");
        inner.stats.hits + inner.stats.faults
    }

    /// Block until `pins_served() >= target` or `stop` is raised; returns
    /// whether the target was reached.
    fn wait_for_pins(&self, target: u64, stop: &AtomicBool) -> bool {
        let mut inner = self.inner.lock().expect("page cache lock poisoned");
        loop {
            if inner.stats.hits + inner.stats.faults >= target {
                return true;
            }
            if stop.load(Ordering::Acquire) {
                return false;
            }
            // A short timeout backstops a notify that raced the stop flag.
            let (guard, _timeout) = self
                .progress
                .wait_timeout(inner, std::time::Duration::from_millis(1))
                .expect("page cache lock poisoned");
            inner = guard;
        }
    }

    /// Pin page `page` of `source`, loading it on a miss.  The returned
    /// guard keeps the page unevictable until dropped.
    pub fn pin<'a>(&'a self, source: &dyn MatrixSource, page: usize) -> io::Result<PinnedPage<'a>> {
        // Fast path: serve a cached page under the lock.
        {
            let mut inner = self.inner.lock().expect("page cache lock poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.slots.get_mut(&page) {
                slot.pins += 1;
                slot.last_used = tick;
                let was_prefetched = std::mem::take(&mut slot.prefetched);
                let data = Arc::clone(&slot.data);
                if was_prefetched {
                    inner.stats.prefetch_hits += 1;
                }
                inner.stats.hits += 1;
                drop(inner);
                self.progress.notify_all();
                return Ok(PinnedPage {
                    cache: self,
                    page,
                    data,
                });
            }
        }
        // Fault: read the page with the lock *released*, so hits and faults
        // on other pages (e.g. two nodes materializing their shard
        // subranges) proceed during this page's IO.
        let mut loaded = Vec::new();
        source.read_page(page, &mut loaded)?;
        let bytes = loaded.len() * ENTRY_BYTES;
        let mut inner = self.inner.lock().expect("page cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.slots.get_mut(&page) {
            // Another thread loaded the same page while we read; keep the
            // cached copy (bit-identical by the `MatrixSource` contract)
            // and count the serve as a hit — faults/io track pages that
            // *entered* the cache, so racing loads never double-count.
            slot.pins += 1;
            slot.last_used = tick;
            let was_prefetched = std::mem::take(&mut slot.prefetched);
            let data = Arc::clone(&slot.data);
            if was_prefetched {
                inner.stats.prefetch_hits += 1;
            }
            inner.stats.hits += 1;
            drop(inner);
            self.progress.notify_all();
            return Ok(PinnedPage {
                cache: self,
                page,
                data,
            });
        }
        inner.stats.faults += 1;
        inner.stats.io_bytes += bytes as u64;
        while inner.stats.resident_bytes + bytes > self.budget {
            // Prefer victims no prefetcher staged: a `prefetched` page is
            // about to be consumed, so evicting it would turn overlapped IO
            // straight back into a blocking fault.
            let victim = inner
                .slots
                .iter()
                .filter(|(_, s)| s.pins == 0)
                .min_by_key(|(_, s)| (s.prefetched, s.last_used))
                .map(|(&p, _)| p);
            match victim {
                Some(p) => {
                    let slot = inner.slots.remove(&p).expect("victim exists");
                    inner.stats.resident_bytes -= slot.bytes;
                    inner.stats.evictions += 1;
                }
                // Everything resident is pinned: the insert below may
                // overshoot the budget; the peak counter records it.
                None => break,
            }
        }
        let data = Arc::new(loaded);
        inner.slots.insert(
            page,
            Slot {
                data: Arc::clone(&data),
                bytes,
                pins: 1,
                last_used: tick,
                prefetched: false,
            },
        );
        inner.stats.resident_bytes += bytes;
        inner.stats.peak_resident_bytes = inner
            .stats
            .peak_resident_bytes
            .max(inner.stats.resident_bytes);
        drop(inner);
        self.progress.notify_all();
        Ok(PinnedPage {
            cache: self,
            page,
            data,
        })
    }

    /// Load page `page` ahead of use and insert it unpinned (best-effort
    /// prefetch admission).
    ///
    /// The insert only evicts pages that are neither pinned nor freshly
    /// prefetched; when the page is already cached, or nothing evictable
    /// would make room, the load is skipped/discarded and `Ok(false)` is
    /// returned.  Never blocks a consumer: IO happens with the lock
    /// released, exactly like a `pin` fault.
    pub fn prefetch(&self, source: &dyn MatrixSource, page: usize) -> io::Result<bool> {
        {
            let inner = self.inner.lock().expect("page cache lock poisoned");
            if inner.slots.contains_key(&page) {
                return Ok(false);
            }
        }
        let mut loaded = Vec::new();
        source.read_page(page, &mut loaded)?;
        let bytes = loaded.len() * ENTRY_BYTES;
        let mut inner = self.inner.lock().expect("page cache lock poisoned");
        if inner.slots.contains_key(&page) {
            // A consumer faulted it in while we read; theirs wins.
            return Ok(false);
        }
        while inner.stats.resident_bytes + bytes > self.budget {
            let victim = inner
                .slots
                .iter()
                .filter(|(_, s)| s.pins == 0 && !s.prefetched)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(&p, _)| p);
            match victim {
                Some(p) => {
                    let slot = inner.slots.remove(&p).expect("victim exists");
                    inner.stats.resident_bytes -= slot.bytes;
                    inner.stats.evictions += 1;
                }
                // Only pinned or staged pages remain — give up rather than
                // overshoot the budget or eat the prefetch window.
                None => return Ok(false),
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.stats.prefetched += 1;
        inner.stats.io_bytes += bytes as u64;
        inner.slots.insert(
            page,
            Slot {
                data: Arc::new(loaded),
                bytes,
                pins: 0,
                last_used: tick,
                prefetched: true,
            },
        );
        inner.stats.resident_bytes += bytes;
        inner.stats.peak_resident_bytes = inner
            .stats
            .peak_resident_bytes
            .max(inner.stats.resident_bytes);
        Ok(true)
    }

    /// Drop every unpinned page (used once layouts are materialized and the
    /// stream is done with the source).
    pub fn release(&self) {
        let mut inner = self.inner.lock().expect("page cache lock poisoned");
        let unpinned: Vec<usize> = inner
            .slots
            .iter()
            .filter(|(_, s)| s.pins == 0)
            .map(|(&p, _)| p)
            .collect();
        for p in unpinned {
            let slot = inner.slots.remove(&p).expect("slot exists");
            inner.stats.resident_bytes -= slot.bytes;
        }
    }

    fn unpin(&self, page: usize) {
        let mut inner = self.inner.lock().expect("page cache lock poisoned");
        if let Some(slot) = inner.slots.get_mut(&page) {
            slot.pins = slot.pins.saturating_sub(1);
        }
    }
}

/// A pinned, loaded page; dereferences to its triplets.  Dropping the guard
/// unpins the page (it stays cached until evicted).
#[derive(Debug)]
pub struct PinnedPage<'a> {
    cache: &'a PageCache,
    page: usize,
    data: Arc<Vec<Entry>>,
}

impl std::ops::Deref for PinnedPage<'_> {
    type Target = [Entry];

    fn deref(&self) -> &[Entry] {
        &self.data
    }
}

impl Drop for PinnedPage<'_> {
    fn drop(&mut self) {
        self.cache.unpin(self.page);
    }
}

/// An asynchronous page prefetcher: a thread that walks the manifest in
/// access order, staying `depth` pages ahead of the consuming stream.
///
/// The footer manifest makes every streaming pass's page-access order fully
/// predictable (pages are visited in manifest order), so the prefetcher
/// needs no feedback beyond the cache's served-pin clock: before loading
/// page `k` it waits until the consumer has been served at least `k - depth`
/// pages since the prefetcher started.  Admission goes through
/// [`PageCache::prefetch`], which never evicts pinned or freshly staged
/// pages and never blocks a consumer.
///
/// Dropping the handle stops the thread and joins it.  The prefetcher only
/// ever *warms the cache* — consumers still pin every page through the same
/// `pin` path, so traces and layouts stay bit-identical with or without it.
#[derive(Debug)]
pub struct Prefetcher {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Prefetcher {
    /// Start prefetching every page of `source` into `cache`, keeping at
    /// most `depth` pages in flight ahead of the consuming stream.
    pub fn spawn(source: Arc<dyn MatrixSource>, cache: Arc<PageCache>, depth: usize) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let baseline = cache.pins_served();
        // Stage the first window synchronously, before the consumer takes
        // its first pin: a consumer scheduled ahead of the prefetch thread
        // would otherwise fault the whole head of the stream itself, making
        // prefetch effectiveness a thread-scheduling race.
        let head = depth.min(source.page_count());
        for page in 0..head {
            if cache.prefetch(&*source, page).is_err() {
                break;
            }
        }
        let handle = std::thread::Builder::new()
            .name("dw-prefetch".into())
            .spawn(move || {
                let pages = source.page_count();
                for page in head..pages {
                    // Stay at most `depth` ahead of the pins served since
                    // spawn; the clock also advances on hits, so a fully
                    // warm cache lets the walk finish without IO.
                    let target = baseline + (page as u64).saturating_sub(depth as u64);
                    if !cache.wait_for_pins(target, &thread_stop) {
                        return;
                    }
                    if thread_stop.load(Ordering::Acquire) {
                        return;
                    }
                    // IO errors end the walk quietly: the consumer's own
                    // fault path will surface the error with context.
                    if cache.prefetch(&*source, page).is_err() {
                        return;
                    }
                }
            })
            .expect("spawn prefetch thread");
        Prefetcher {
            stop,
            handle: Some(handle),
        }
    }

    /// Signal the thread to stop and join it (also runs on drop).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A [`MatrixSource`] paired with its bounded [`PageCache`] — the unit a
/// [`crate::DataMatrix`] holds as its out-of-core canonical source.  The
/// cache is `Arc`-shared so a [`Prefetcher`] thread can fill it while the
/// session's stream consumes.
#[derive(Debug)]
pub struct PagedSource {
    source: Arc<dyn MatrixSource>,
    cache: Arc<PageCache>,
    ingest: Option<Arc<IngestCounters>>,
}

impl PagedSource {
    /// Wrap a source with a cache bounded to `cache_budget_bytes`.
    pub fn new(source: Arc<dyn MatrixSource>, cache_budget_bytes: usize) -> Self {
        PagedSource {
            source,
            cache: Arc::new(PageCache::new(cache_budget_bytes)),
            ingest: None,
        }
    }

    /// Attach shared ingest counters; [`stats`](Self::stats) surfaces them
    /// merged into the cache counters.
    pub fn with_ingest(mut self, counters: Arc<IngestCounters>) -> Self {
        self.ingest = Some(counters);
        self
    }

    /// Cache counters, with the delta-append/compaction totals of any
    /// attached [`IngestCounters`] merged in.
    pub fn stats(&self) -> CacheStats {
        let mut stats = self.cache.stats();
        if let Some(counters) = &self.ingest {
            stats.delta_appends = counters.delta_appends.load(Ordering::Relaxed);
            stats.compactions = counters.compactions.load(Ordering::Relaxed);
        }
        stats
    }

    /// Shape of the underlying source.
    pub fn shape(&self) -> Shape {
        self.source.shape()
    }

    /// The underlying source.
    pub fn source(&self) -> &Arc<dyn MatrixSource> {
        &self.source
    }

    /// The page cache.
    pub fn cache(&self) -> &PageCache {
        &self.cache
    }

    /// The shared page cache handle (what a [`Prefetcher`] holds).
    pub fn shared_cache(&self) -> Arc<PageCache> {
        Arc::clone(&self.cache)
    }

    /// Start a [`Prefetcher`] walking this source's manifest `depth` pages
    /// ahead of the stream; returns `None` when `depth` is zero.
    pub fn start_prefetch(&self, depth: usize) -> Option<Prefetcher> {
        if depth == 0 {
            return None;
        }
        Some(Prefetcher::spawn(
            Arc::clone(&self.source),
            self.shared_cache(),
            depth,
        ))
    }

    /// Stream the **merged** triplets of rows `start..end` in row-major
    /// order through the bounded cache, pinning one page at a time.
    ///
    /// Each page is merged independently with the same stable sort + sum +
    /// drop-zero pass as [`CooMatrix::to_csr`]; because pages are
    /// row-disjoint and ordered, the concatenated emission is bit-identical
    /// to the global merge restricted to `start..end`.
    pub fn stream_rows(
        &self,
        start: usize,
        end: usize,
        mut emit: impl FnMut(usize, usize, f64),
    ) -> io::Result<()> {
        let clip = start > 0 || end < self.source.shape().rows;
        for page in self.source.pages_for_rows(start, end) {
            let pinned = self.cache.pin(&*self.source, page)?;
            if clip {
                merge_triplets(&pinned, false, |r, c, v| {
                    if r >= start && r < end {
                        emit(r, c, v);
                    }
                });
            } else {
                merge_triplets(&pinned, false, &mut emit);
            }
        }
        Ok(())
    }
}

/// A self-deleting directory for spill files, so tests and benches never
/// leave pages behind in the repository or the system temp dir.
#[derive(Debug)]
pub struct TempSpillDir {
    path: PathBuf,
}

impl TempSpillDir {
    /// Create a uniquely named directory under the system temp dir.
    pub fn new(prefix: &str) -> io::Result<Self> {
        let unique = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{unique}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(TempSpillDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempSpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A collision-free spill-file name (used by
/// [`crate::DataMatrix::spill_source_to`]).
pub fn unique_spill_name(stem: &str) -> String {
    let unique = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{stem}-{}-{unique}.dwpg", std::process::id())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_coo() -> CooMatrix {
        let mut coo = CooMatrix::new(6, 4);
        for (r, c, v) in [
            (0, 1, 1.5),
            (0, 1, 2.5), // duplicate, merges to 4.0
            (1, 0, -1.0),
            (1, 3, 1.0),
            (1, 3, -1.0), // cancels, dropped
            (3, 2, 7.0),
            (5, 0, 0.25),
        ] {
            coo.push(r, c, v).unwrap();
        }
        coo
    }

    fn spill(coo: &CooMatrix, dir: &TempSpillDir, page_bytes: usize) -> FileBackedSource {
        let mut entries = coo.entries().to_vec();
        entries.sort_by_key(|e| e.row);
        let mut w = SpillWriter::create(dir.file("m.dwpg"), coo.rows(), coo.cols())
            .unwrap()
            .with_page_bytes(page_bytes);
        for e in &entries {
            w.push(e.row as usize, e.col as usize, e.value).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn in_memory_source_pages_are_row_disjoint_and_cover_all_rows() {
        let coo = sample_coo();
        // Tiny pages: force multiple pages.
        let source = InMemorySource::from_coo(&coo, ENTRY_BYTES);
        assert!(source.page_count() > 1);
        let mut prev_end = 0;
        for p in 0..source.page_count() {
            let meta = source.page_meta(p);
            assert_eq!(meta.row_start, prev_end, "page {p} contiguous");
            assert!(meta.row_end > meta.row_start);
            prev_end = meta.row_end;
        }
        assert_eq!(prev_end, coo.rows(), "pages cover every row");
        assert_eq!(source.total_entries(), coo.nnz());
        assert_eq!(source.total_bytes(), coo.size_bytes());
    }

    #[test]
    fn file_roundtrip_preserves_every_triplet_bit() {
        let coo = sample_coo();
        let dir = TempSpillDir::new("dw-ooc-test").unwrap();
        let source = spill(&coo, &dir, 32);
        assert!(source.page_count() > 1);
        assert_eq!(source.shape(), coo.shape());
        assert_eq!(source.total_entries(), coo.nnz());
        // Page offsets are aligned.
        for meta in source.manifest() {
            assert_eq!(meta.offset % PAGE_ALIGN, 0, "page offsets are aligned");
        }
        // Reopening reads the same manifest and pages.
        let reopened = FileBackedSource::open(source.path()).unwrap();
        assert_eq!(reopened.manifest(), source.manifest());
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut all = Vec::new();
        for p in 0..source.page_count() {
            source.read_page(p, &mut a).unwrap();
            reopened.read_page(p, &mut b).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.row, y.row);
                assert_eq!(x.col, y.col);
                assert_eq!(x.value.to_bits(), y.value.to_bits());
            }
            all.extend_from_slice(&a);
        }
        let mut expected = coo.entries().to_vec();
        expected.sort_by_key(|e| e.row);
        assert_eq!(all.len(), expected.len());
        for (x, y) in all.iter().zip(&expected) {
            assert_eq!(
                (x.row, x.col, x.value.to_bits()),
                (y.row, y.col, y.value.to_bits())
            );
        }
    }

    #[test]
    fn spill_writer_rejects_out_of_order_and_out_of_bounds() {
        let dir = TempSpillDir::new("dw-ooc-test").unwrap();
        let mut w = SpillWriter::create(dir.file("bad.dwpg"), 4, 4).unwrap();
        w.push(2, 0, 1.0).unwrap();
        assert!(w.push(1, 0, 1.0).is_err(), "rows must be non-decreasing");
        assert!(w.push(2, 9, 1.0).is_err(), "columns are bounds-checked");
        assert!(w.push(9, 0, 1.0).is_err(), "rows are bounds-checked");
    }

    #[test]
    fn delete_on_drop_removes_the_spill_file() {
        let dir = TempSpillDir::new("dw-ooc-test").unwrap();
        let source = spill(&sample_coo(), &dir, 64).delete_on_drop();
        let path = source.path().to_path_buf();
        assert!(path.exists());
        drop(source);
        assert!(!path.exists(), "spill file was removed on drop");
    }

    #[test]
    fn page_cache_enforces_its_budget_with_lru_eviction() {
        let coo = sample_coo();
        let source = InMemorySource::from_coo(&coo, ENTRY_BYTES); // 1 entry/page-ish
        let pages = source.page_count();
        assert!(pages >= 3);
        let page_bytes = source.page_meta(0).bytes();
        // Budget: two pages.
        let cache = PageCache::new(2 * page_bytes);
        for p in 0..pages {
            let pinned = cache.pin(&source, p).unwrap();
            assert_eq!(pinned.len(), source.page_meta(p).entries);
        }
        let stats = cache.stats();
        assert_eq!(stats.faults, pages as u64);
        assert_eq!(stats.hits, 0);
        assert!(stats.evictions >= (pages - 2) as u64);
        assert!(
            stats.peak_resident_bytes <= 2 * page_bytes,
            "peak {} over budget {}",
            stats.peak_resident_bytes,
            2 * page_bytes
        );
        // Re-reading the most recent page hits; the oldest faults again.
        let _ = cache.pin(&source, pages - 1).unwrap();
        assert_eq!(cache.stats().hits, 1);
        let _ = cache.pin(&source, 0).unwrap();
        assert_eq!(cache.stats().faults, pages as u64 + 1);
        // Release drops all unpinned residency.
        cache.release();
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let coo = sample_coo();
        let source = InMemorySource::from_coo(&coo, ENTRY_BYTES);
        let pages = source.page_count();
        let page_bytes = source.page_meta(0).bytes();
        let cache = PageCache::new(page_bytes); // room for one page only
        let pinned = cache.pin(&source, 0).unwrap();
        // Faulting other pages cannot evict the pinned one.
        for p in 1..pages {
            let _ = cache.pin(&source, p).unwrap();
        }
        assert_eq!(pinned[0].row, 0, "pinned data still valid");
        let again = cache.pin(&source, 0).unwrap();
        assert_eq!(cache.stats().hits, 1, "page 0 never left the cache");
        drop(again);
        drop(pinned);
        cache.release();
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn paged_stream_matches_the_global_merge() {
        let coo = sample_coo();
        let dir = TempSpillDir::new("dw-ooc-test").unwrap();
        let source = spill(&coo, &dir, 32);
        let paged = PagedSource::new(Arc::new(source), 64);
        let mut streamed = Vec::new();
        paged
            .stream_rows(0, coo.rows(), |r, c, v| streamed.push((r, c, v.to_bits())))
            .unwrap();
        let mut expected = Vec::new();
        let csr = coo.to_csr();
        for i in 0..csr.rows() {
            let row = csr.row(i);
            for (j, v) in row.iter() {
                expected.push((i, j, v.to_bits()));
            }
        }
        assert_eq!(streamed, expected, "paged merge == global merge");
        // A row subrange clips exactly.
        let mut sub = Vec::new();
        paged
            .stream_rows(1, 4, |r, c, v| sub.push((r, c, v.to_bits())))
            .unwrap();
        let expected_sub: Vec<_> = expected
            .iter()
            .copied()
            .filter(|&(r, _, _)| (1..4).contains(&r))
            .collect();
        assert_eq!(sub, expected_sub);
    }

    #[test]
    fn pages_for_rows_windows_the_manifest() {
        let coo = sample_coo();
        let source = InMemorySource::from_coo(&coo, ENTRY_BYTES);
        let all = source.pages_for_rows(0, coo.rows());
        assert_eq!(all, 0..source.page_count());
        let none = source.pages_for_rows(0, 0);
        assert!(none.is_empty());
        // Every selected page intersects the range; every skipped page does not.
        for (start, end) in [(0, 2), (1, 4), (3, 6), (5, 6)] {
            let selected = source.pages_for_rows(start, end);
            for p in 0..source.page_count() {
                let meta = source.page_meta(p);
                let intersects = meta.row_start < end && meta.row_end > start;
                assert_eq!(
                    selected.contains(&p),
                    intersects,
                    "page {p} range {}..{} vs rows {start}..{end}",
                    meta.row_start,
                    meta.row_end
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_file_pages_stream_bit_identically_to_memory(
            triplets in proptest::collection::vec((0usize..12, 0usize..6, -4.0f64..4.0), 0..60),
            page_bytes in 1usize..6,
            budget_pages in 1usize..4,
        ) {
            let mut coo = CooMatrix::new(12, 6);
            for (r, c, v) in triplets {
                // Exercise explicit zeros and duplicate merging.
                let v = if v < -3.5 { 0.0 } else { v };
                coo.push(r, c, v).unwrap();
            }
            let dir = TempSpillDir::new("dw-ooc-prop").unwrap();
            let file = spill(&coo, &dir, page_bytes * ENTRY_BYTES);
            let memory = InMemorySource::from_coo(&coo, page_bytes * ENTRY_BYTES);
            prop_assert_eq!(file.total_entries(), memory.total_entries());
            // Both sources stream the same merged triplets under a cache
            // smaller than the source.
            let budget = budget_pages * page_bytes * ENTRY_BYTES;
            let from_file = PagedSource::new(Arc::new(file), budget);
            let from_memory = PagedSource::new(Arc::new(memory), budget);
            let mut a = Vec::new();
            let mut b = Vec::new();
            from_file.stream_rows(0, 12, |r, c, v| a.push((r, c, v.to_bits()))).unwrap();
            from_memory.stream_rows(0, 12, |r, c, v| b.push((r, c, v.to_bits()))).unwrap();
            prop_assert_eq!(&a, &b);
            // And both match the global in-memory merge.
            let csr = coo.to_csr();
            let mut expected = Vec::new();
            for i in 0..csr.rows() {
                for (j, v) in csr.row(i).iter() {
                    expected.push((i, j, v.to_bits()));
                }
            }
            prop_assert_eq!(a, expected);
            // Single-pin streaming never exceeds the budget (or, when the
            // budget is below one page, a single page).
            let stats = from_file.cache().stats();
            let max_page = (0..from_file.source().page_count())
                .map(|p| from_file.source().page_meta(p).bytes())
                .max()
                .unwrap_or(0);
            prop_assert!(stats.peak_resident_bytes <= budget.max(max_page));
        }
    }

    /// A uniform synthetic source: 2 entries per row, 2 rows per page, so
    /// every page carries exactly the same byte count (which lets the
    /// stress test reconcile `io_bytes` against the fault/prefetch counts
    /// exactly).
    fn uniform_source() -> InMemorySource {
        let mut coo = CooMatrix::new(64, 8);
        for r in 0..64 {
            for c in 0..2 {
                coo.push(r, c, (r * 8 + c) as f64 + 0.5).unwrap();
            }
        }
        InMemorySource::from_coo(&coo, 4 * ENTRY_BYTES)
    }

    #[test]
    fn page_cache_is_safe_under_concurrent_pin_and_prefetch_pressure() {
        let source = Arc::new(uniform_source());
        let pages = source.page_count();
        assert!(pages >= 8);
        let page_bytes = source.page_meta(0).bytes();
        assert!(
            (0..pages).all(|p| source.page_meta(p).bytes() == page_bytes),
            "uniform pages, so io_bytes reconciles exactly"
        );
        // Room for three pages; three threads plus a long-lived pin fight
        // over them.
        let cache = Arc::new(PageCache::new(3 * page_bytes));
        let pinned = cache.pin(source.as_ref(), 0).unwrap();
        let witness = (pinned[0].row, pinned[0].col, pinned[0].value.to_bits());
        let rounds = 50;
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let source = Arc::clone(&source);
                std::thread::spawn(move || {
                    for round in 0..rounds {
                        for p in 0..pages {
                            if (p + t + round) % 7 == 0 {
                                // Admission under pressure: may decline
                                // (nothing evictable), never errors.
                                let _ = cache.prefetch(source.as_ref(), p).unwrap();
                            }
                            let page = cache.pin(source.as_ref(), p).unwrap();
                            let meta = source.page_meta(p);
                            assert_eq!(page.len(), meta.entries);
                            assert!(page.iter().all(
                                |e| (meta.row_start..meta.row_end).contains(&(e.row as usize))
                            ));
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(
            (pinned[0].row, pinned[0].col, pinned[0].value.to_bits()),
            witness,
            "the pinned page was never evicted or corrupted"
        );
        let stats = cache.stats();
        let total_pins = 1 + 3 * rounds as u64 * pages as u64;
        assert_eq!(
            stats.hits + stats.faults,
            total_pins,
            "every pin is exactly one hit or one fault"
        );
        assert_eq!(cache.pins_served(), total_pins);
        assert_eq!(
            stats.io_bytes,
            (stats.faults + stats.prefetched) * page_bytes as u64,
            "every byte that entered the cache is a fault or a prefetch"
        );
        assert!(
            stats.prefetch_hits <= stats.prefetched,
            "a prefetched page is consumed at most once per staging"
        );
        // The budget bounds *unpinned* residency; pinned pages overcommit.
        // At most four pins are live at once (the witness plus one per
        // thread), so that is the hard ceiling.
        assert!(
            stats.peak_resident_bytes <= 4 * page_bytes,
            "residency never exceeded the concurrently pinned bytes"
        );
    }

    #[test]
    fn prefetcher_turns_faults_into_hits_without_changing_the_stream() {
        let coo = {
            let mut coo = CooMatrix::new(64, 8);
            for r in 0..64 {
                for c in 0..2 {
                    coo.push(r, c, (r * 8 + c) as f64 + 0.5).unwrap();
                }
            }
            coo
        };
        let dir = TempSpillDir::new("dw-ooc-prefetch").unwrap();
        let source = Arc::new(spill(&coo, &dir, 4 * ENTRY_BYTES));
        let budget = 4 * 4 * ENTRY_BYTES;
        let collect = |prefetch_depth: usize| {
            let paged = PagedSource::new(Arc::clone(&source) as Arc<dyn MatrixSource>, budget);
            let prefetcher = paged.start_prefetch(prefetch_depth);
            let mut streamed = Vec::new();
            paged
                .stream_rows(0, 64, |r, c, v| streamed.push((r, c, v.to_bits())))
                .unwrap();
            drop(prefetcher);
            (streamed, paged.cache().stats())
        };
        let (cold, cold_stats) = collect(0);
        let (warm, warm_stats) = collect(3);
        assert_eq!(cold, warm, "prefetch only warms the cache — same bytes");
        assert_eq!(cold_stats.prefetched, 0);
        assert_eq!(cold_stats.prefetch_hits, 0);
        assert!(
            warm_stats.prefetched > 0,
            "the prefetcher staged pages ahead of the stream"
        );
        assert!(
            warm_stats.prefetch_hits > 0,
            "staged pages were consumed as hits"
        );
        assert!(
            warm_stats.faults < cold_stats.faults,
            "prefetch hits replaced blocking faults: {} vs {}",
            warm_stats.faults,
            cold_stats.faults
        );
    }

    #[test]
    fn temp_spill_dir_cleans_up_while_a_panic_unwinds() {
        let dir = TempSpillDir::new("dw-ooc-panic").unwrap();
        let path = dir.path().to_path_buf();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            std::fs::write(dir.file("partial.dwpg"), b"half-written page").unwrap();
            panic!("spill failed mid-write");
        }));
        assert!(result.is_err());
        assert!(
            !path.exists(),
            "the spill dir and its contents were removed during unwind"
        );
    }

    #[test]
    fn unique_spill_name_never_collides_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..200)
                        .map(|_| unique_spill_name("stress"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        for handle in handles {
            for name in handle.join().unwrap() {
                assert!(seen.insert(name.clone()), "duplicate spill name {name}");
            }
        }
        assert_eq!(seen.len(), 8 * 200);
    }
}
