//! Dense and sparse vector kernels.
//!
//! The gradient functions of every model in the paper reduce to a handful of
//! BLAS-1 style kernels: dot products between a (sparse or dense) example row
//! and the dense model, and axpy-style updates of the model.  The kernels are
//! written over slices so that they work against model replicas regardless of
//! which replication strategy owns the memory.

/// A sparse vector stored as parallel index/value arrays, sorted by index.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    /// Indices of the non-zero components, strictly increasing.
    pub indices: Vec<u32>,
    /// Values of the non-zero components, aligned with `indices`.
    pub values: Vec<f64>,
}

impl SparseVector {
    /// Create an empty sparse vector.
    pub fn new() -> Self {
        SparseVector::default()
    }

    /// Create a sparse vector from parallel arrays.
    ///
    /// # Panics
    /// Panics if the arrays differ in length or indices are not strictly
    /// increasing.
    pub fn from_parts(indices: Vec<u32>, values: Vec<f64>) -> Self {
        assert_eq!(
            indices.len(),
            values.len(),
            "index/value arrays must be aligned"
        );
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        SparseVector { indices, values }
    }

    /// Number of stored (non-zero) components.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Whether the vector stores no components.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Push a component; index must exceed the last stored index.
    pub fn push(&mut self, index: u32, value: f64) {
        debug_assert!(
            self.indices.last().is_none_or(|&last| last < index),
            "indices must be pushed in increasing order"
        );
        self.indices.push(index);
        self.values.push(value);
    }

    /// Iterate over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices
            .iter()
            .zip(self.values.iter())
            .map(|(&i, &v)| (i as usize, v))
    }

    /// Materialize into a dense vector of length `dim`.
    pub fn to_dense(&self, dim: usize) -> Vec<f64> {
        let mut out = vec![0.0; dim];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }

    /// Squared Euclidean norm of the stored components (the shared blocked
    /// kernel — single accumulator in order, bit-identical to a sequential
    /// sum).
    pub fn norm2_squared(&self) -> f64 {
        crate::kernels::sum_of_squares(&self.values)
    }
}

/// Dense dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot_dense(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product of mismatched lengths");
    // The 4-way multi-accumulator loop lives in the shared kernels module
    // (exactly one family of accumulate loops in the workspace); the
    // auto-vectorizer handles it well in release builds, and the explicit
    // accumulators also keep debug-mode test runs tolerable for the larger
    // synthetic datasets.
    crate::kernels::dot_dense_unrolled(a, b)
}

/// Dot product of a sparse vector with a dense vector.
///
/// # Index-bounds contract
///
/// Every stored index of `sparse` is expected to be within `dense`'s length;
/// passing a component outside the dense vector is a caller bug (it means
/// the model and the example disagree about the dimension) and is caught by
/// a `debug_assert!` in debug builds.  **In release builds out-of-range
/// components are silently skipped** — the dot product is computed over the
/// in-range components only — because the historical callers scored
/// subsampled rows against truncated models and relied on that behavior.
/// In-range components use the shared blocked kernel.
pub fn dot_sparse_dense(sparse: &SparseVector, dense: &[f64]) -> f64 {
    debug_assert!(
        sparse
            .indices
            .last()
            .is_none_or(|&i| (i as usize) < dense.len()),
        "sparse index {} out of bounds for dense vector of length {} \
         (release builds silently skip out-of-range components)",
        sparse.indices.last().copied().unwrap_or(0),
        dense.len(),
    );
    // Indices are strictly increasing, so the in-range prefix is contiguous.
    let in_range = sparse
        .indices
        .partition_point(|&i| (i as usize) < dense.len());
    crate::kernels::dot_indexed(
        &sparse.indices[..in_range],
        &sparse.values[..in_range],
        dense,
    )
}

/// `y += alpha * x` for dense slices of equal length.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy of mismatched lengths");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `y[i] += alpha * x[i]` for the non-zero components of a sparse `x`.
///
/// Components outside `y`'s length are silently skipped, mirroring the
/// release-mode contract of [`dot_sparse_dense`].
pub fn axpy_sparse(alpha: f64, x: &SparseVector, y: &mut [f64]) {
    for (i, v) in x.iter() {
        if i < y.len() {
            y[i] += alpha * v;
        }
    }
}

/// Multiply a dense slice in place by a scalar.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm of a dense slice.
pub fn norm2(x: &[f64]) -> f64 {
    dot_dense(x, x).sqrt()
}

/// Squared Euclidean distance between two dense slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn distance_squared(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance of mismatched lengths");
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sparse_vector_basics() {
        let mut v = SparseVector::new();
        assert!(v.is_empty());
        v.push(1, 2.0);
        v.push(4, -1.0);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.to_dense(6), vec![0.0, 2.0, 0.0, 0.0, -1.0, 0.0]);
        assert_eq!(v.norm2_squared(), 5.0);
    }

    #[test]
    fn sparse_from_parts() {
        let v = SparseVector::from_parts(vec![0, 3], vec![1.0, 2.0]);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![(0, 1.0), (3, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn sparse_from_parts_mismatched() {
        let _ = SparseVector::from_parts(vec![0, 3], vec![1.0]);
    }

    #[test]
    fn dot_dense_matches_naive() {
        let a: Vec<f64> = (0..13).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..13).map(|i| (i * 2) as f64).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot_dense(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn dot_sparse_dense_rejects_out_of_range_in_debug() {
        let v = SparseVector::from_parts(vec![1, 10], vec![3.0, 100.0]);
        let dense = vec![1.0; 4];
        let _ = dot_sparse_dense(&v, &dense);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn dot_sparse_dense_skips_out_of_range_in_release() {
        // The documented release-mode contract: out-of-range components are
        // silently skipped.
        let v = SparseVector::from_parts(vec![1, 10], vec![3.0, 100.0]);
        let dense = vec![1.0; 4];
        assert_eq!(dot_sparse_dense(&v, &dense), 3.0);
    }

    #[test]
    fn dot_sparse_dense_in_range_matches_kernel() {
        let v = SparseVector::from_parts(vec![0, 2, 3], vec![1.0, 2.0, -1.0]);
        let dense = vec![3.0, 9.0, 0.5, 2.0];
        assert_eq!(dot_sparse_dense(&v, &dense), 3.0 + 1.0 - 2.0);
    }

    #[test]
    fn axpy_dense_and_sparse() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, 1.0, -1.0]);
        let sv = SparseVector::from_parts(vec![2], vec![4.0]);
        axpy_sparse(0.5, &sv, &mut y);
        assert_eq!(y, vec![3.0, 1.0, 1.0]);
    }

    #[test]
    fn scale_and_norm() {
        let mut x = vec![3.0, 4.0];
        assert_eq!(norm2(&x), 5.0);
        scale(2.0, &mut x);
        assert_eq!(x, vec![6.0, 8.0]);
    }

    #[test]
    fn distance_squared_basic() {
        assert_eq!(distance_squared(&[1.0, 2.0], &[1.0, 0.0]), 4.0);
    }

    proptest! {
        #[test]
        fn prop_dot_commutative(a in proptest::collection::vec(-100.0f64..100.0, 0..64)) {
            let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
            let ab = dot_dense(&a, &b);
            let ba = dot_dense(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-9);
        }

        #[test]
        fn prop_dot_linear_in_scale(
            a in proptest::collection::vec(-10.0f64..10.0, 1..32),
            alpha in -5.0f64..5.0,
        ) {
            let b: Vec<f64> = a.iter().map(|x| x - 1.0).collect();
            let scaled: Vec<f64> = a.iter().map(|x| x * alpha).collect();
            let lhs = dot_dense(&scaled, &b);
            let rhs = alpha * dot_dense(&a, &b);
            prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
        }

        #[test]
        fn prop_sparse_dense_dot_matches_densified(
            pairs in proptest::collection::btree_map(0u32..64, -10.0f64..10.0, 0..32),
            dim in 64usize..96,
        ) {
            let indices: Vec<u32> = pairs.keys().copied().collect();
            let values: Vec<f64> = pairs.values().copied().collect();
            let sv = SparseVector::from_parts(indices, values);
            let dense_other: Vec<f64> = (0..dim).map(|i| (i as f64) * 0.1 - 3.0).collect();
            let densified = sv.to_dense(dim);
            let lhs = dot_sparse_dense(&sv, &dense_other);
            let rhs = dot_dense(&densified, &dense_other);
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }

        #[test]
        fn prop_axpy_matches_scalar_loop(
            x in proptest::collection::vec(-10.0f64..10.0, 1..48),
            alpha in -3.0f64..3.0,
        ) {
            let mut y = vec![1.0; x.len()];
            let mut expected = y.clone();
            for (e, xi) in expected.iter_mut().zip(&x) {
                *e += alpha * xi;
            }
            axpy(alpha, &x, &mut y);
            for (a, b) in y.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
