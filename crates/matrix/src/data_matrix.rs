//! The unified storage layer: one logical matrix, plan-driven layouts.
//!
//! The paper treats the physical layout of the data matrix as an *engine
//! decision*: "DimmWitted always stores the dataset in a way that is
//! consistent with the access method" (Appendix A).  [`DataMatrix`] is the
//! storage object that makes that decision cheap to defer — it holds one
//! canonical source form (usually the COO triplets a generator emits) and
//! materializes the compressed layouts **lazily**, caching each one the
//! first time it is requested:
//!
//! * [`DataMatrix::csr`] — row-major compressed storage for row-wise access,
//! * [`DataMatrix::csc`] — column-major compressed storage for column-wise
//!   and column-to-row access,
//! * [`DataMatrix::dense`] — row-major dense storage for dense workloads.
//!
//! A plan that only ever walks rows therefore never allocates the CSC
//! arrays (and vice versa); the planner can eagerly materialize its chosen
//! layout up front with [`DataMatrix::materialize_rows`] /
//! [`DataMatrix::materialize_cols`] so no epoch pays the conversion cost.
//!
//! Clones share the underlying storage (the handle is an `Arc`), so a
//! layout materialized through any clone — a dataset, a task, a shard
//! builder — is visible to every other holder, and the bytes are counted
//! once.  [`MatrixStats`] are computed from the canonical form without
//! materializing anything, which is what lets the cost-based optimizer pick
//! an access method (and hence a layout) *before* any layout exists.

use crate::views::{ColAccess, RowAccess};
use crate::{
    ColView, CooMatrix, CscMatrix, CsrMatrix, DenseMatrix, Layout, MatrixStats, RowView, Shape,
};
use std::sync::{Arc, OnceLock};

/// The canonical form a [`DataMatrix`] was built from.
#[derive(Debug, Clone)]
enum Source {
    /// Unordered triplets (the generator output; cheapest to produce).
    Coo(CooMatrix),
    /// Already row-major (e.g. a shard cut out of another CSR matrix).
    Csr(CsrMatrix),
    /// Already column-major.
    Csc(CscMatrix),
}

#[derive(Debug)]
struct Inner {
    shape: Shape,
    source: Source,
    csr: OnceLock<CsrMatrix>,
    csc: OnceLock<CscMatrix>,
    dense: OnceLock<DenseMatrix>,
    stats: OnceLock<MatrixStats>,
}

/// A logical data matrix with lazily materialized, cached physical layouts.
///
/// Cloning is cheap (an `Arc` bump) and clones share the layout caches.
#[derive(Debug, Clone)]
pub struct DataMatrix {
    inner: Arc<Inner>,
}

impl DataMatrix {
    fn from_source(shape: Shape, source: Source) -> Self {
        DataMatrix {
            inner: Arc::new(Inner {
                shape,
                source,
                csr: OnceLock::new(),
                csc: OnceLock::new(),
                dense: OnceLock::new(),
                stats: OnceLock::new(),
            }),
        }
    }

    /// Build from the canonical COO form; nothing is materialized yet.
    pub fn from_coo(coo: CooMatrix) -> Self {
        Self::from_source(coo.shape(), Source::Coo(coo))
    }

    /// Build from an existing CSR matrix (counts as the row layout being
    /// materialized).
    pub fn from_csr(csr: CsrMatrix) -> Self {
        Self::from_source(csr.shape(), Source::Csr(csr))
    }

    /// Build from an existing CSC matrix (counts as the column layout being
    /// materialized).
    pub fn from_csc(csc: CscMatrix) -> Self {
        Self::from_source(csc.shape(), Source::Csc(csc))
    }

    /// Shape of the matrix.
    pub fn shape(&self) -> Shape {
        self.inner.shape
    }

    /// Number of rows (examples `N`).
    pub fn rows(&self) -> usize {
        self.inner.shape.rows
    }

    /// Number of columns (model dimension `d`).
    pub fn cols(&self) -> usize {
        self.inner.shape.cols
    }

    /// Number of stored non-zeros after duplicate merging / zero dropping.
    ///
    /// Computed from the cached statistics; never materializes a layout.
    pub fn nnz(&self) -> usize {
        self.stats().nnz
    }

    /// Matrix statistics for the cost-based optimizer.
    ///
    /// Computed once from the canonical source form (or from an
    /// already-materialized layout when one exists) and cached; never
    /// triggers a layout materialization.
    pub fn stats(&self) -> &MatrixStats {
        self.inner.stats.get_or_init(|| {
            if let Some(csr) = self.csr_if_materialized() {
                return MatrixStats::from_csr(csr);
            }
            match &self.inner.source {
                Source::Coo(coo) => MatrixStats::from_coo(coo),
                Source::Csr(csr) => MatrixStats::from_csr(csr),
                Source::Csc(csc) => MatrixStats::from_csc(csc),
            }
        })
    }

    /// The row-major compressed layout, materialized and cached on first
    /// request.
    pub fn csr(&self) -> &CsrMatrix {
        if let Source::Csr(csr) = &self.inner.source {
            return csr;
        }
        self.inner.csr.get_or_init(|| match &self.inner.source {
            Source::Coo(coo) => coo.to_csr(),
            Source::Csc(csc) => csc.to_csr(),
            Source::Csr(_) => unreachable!("handled above"),
        })
    }

    /// The column-major compressed layout, materialized and cached on first
    /// request.  Built directly from the COO source (no transient CSR).
    pub fn csc(&self) -> &CscMatrix {
        if let Source::Csc(csc) = &self.inner.source {
            return csc;
        }
        self.inner.csc.get_or_init(|| match &self.inner.source {
            Source::Coo(coo) => coo.to_csc(),
            Source::Csr(csr) => csr.to_csc(),
            Source::Csc(_) => unreachable!("handled above"),
        })
    }

    /// The row-major dense layout, materialized and cached on first request.
    pub fn dense(&self) -> &DenseMatrix {
        self.inner.dense.get_or_init(|| match &self.inner.source {
            Source::Coo(coo) => coo.to_dense(Layout::RowMajor),
            Source::Csr(csr) => csr.to_dense(Layout::RowMajor),
            Source::Csc(csc) => csc.to_dense(Layout::RowMajor),
        })
    }

    /// Eagerly materialize the row layout (planner hook).
    pub fn materialize_rows(&self) {
        let _ = self.csr();
    }

    /// Eagerly materialize the column layout (planner hook).
    pub fn materialize_cols(&self) {
        let _ = self.csc();
    }

    fn csr_if_materialized(&self) -> Option<&CsrMatrix> {
        if let Source::Csr(csr) = &self.inner.source {
            return Some(csr);
        }
        self.inner.csr.get()
    }

    fn csc_if_materialized(&self) -> Option<&CscMatrix> {
        if let Source::Csc(csc) = &self.inner.source {
            return Some(csc);
        }
        self.inner.csc.get()
    }

    /// Whether the row-major compressed layout is resident.
    pub fn csr_materialized(&self) -> bool {
        self.csr_if_materialized().is_some()
    }

    /// Whether the column-major compressed layout is resident.
    pub fn csc_materialized(&self) -> bool {
        self.csc_if_materialized().is_some()
    }

    /// Whether the dense layout is resident.
    pub fn dense_materialized(&self) -> bool {
        self.inner.dense.get().is_some()
    }

    /// Bytes held by the source form plus every materialized layout — the
    /// quantity the memory-footprint regression tests bound.
    pub fn resident_bytes(&self) -> usize {
        let source = match &self.inner.source {
            Source::Coo(coo) => coo.size_bytes(),
            Source::Csr(csr) => csr.size_bytes(),
            Source::Csc(csc) => csc.size_bytes(),
        };
        source
            + self.inner.csr.get().map_or(0, |m| m.size_bytes())
            + self.inner.csc.get().map_or(0, |m| m.size_bytes())
            + self
                .inner
                .dense
                .get()
                .map_or(0, |_| self.inner.shape.dense_len() * 8)
    }

    /// Value at `(row, col)` (zero if not stored).  Reads whichever layout
    /// is already resident; materializes CSR only as a last resort.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if let Some(csr) = self.csr_if_materialized() {
            return csr.get(row, col);
        }
        if let Some(csc) = self.csc_if_materialized() {
            return csc.get(row, col);
        }
        self.csr().get(row, col)
    }

    /// The canonical COO source, when the matrix was built from one.
    pub fn coo_source(&self) -> Option<&CooMatrix> {
        match &self.inner.source {
            Source::Coo(coo) => Some(coo),
            _ => None,
        }
    }

    /// Cut a row shard (used by NUMA data replication); the shard's source
    /// form is the row layout, so a row-wise shard never carries columns.
    pub fn select_rows(&self, row_ids: &[usize]) -> DataMatrix {
        DataMatrix::from_csr(self.csr().select_rows(row_ids))
    }
}

impl From<CooMatrix> for DataMatrix {
    fn from(coo: CooMatrix) -> Self {
        DataMatrix::from_coo(coo)
    }
}

impl From<CsrMatrix> for DataMatrix {
    fn from(csr: CsrMatrix) -> Self {
        DataMatrix::from_csr(csr)
    }
}

impl From<CscMatrix> for DataMatrix {
    fn from(csc: CscMatrix) -> Self {
        DataMatrix::from_csc(csc)
    }
}

impl RowAccess for DataMatrix {
    fn shape(&self) -> Shape {
        self.inner.shape
    }

    fn row(&self, i: usize) -> RowView<'_> {
        self.csr().row(i)
    }

    fn row_nnz(&self, i: usize) -> usize {
        self.csr().row_nnz(i)
    }
}

impl ColAccess for DataMatrix {
    fn shape(&self) -> Shape {
        self.inner.shape
    }

    fn col(&self, j: usize) -> ColView<'_> {
        self.csc().col(j)
    }

    fn col_nnz(&self, j: usize) -> usize {
        self.csc().col_nnz(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_coo() -> CooMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [0, 3, 4]]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(2, 1, 3.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        coo
    }

    #[test]
    fn nothing_materialized_until_requested() {
        let m = DataMatrix::from_coo(sample_coo());
        assert!(!m.csr_materialized());
        assert!(!m.csc_materialized());
        assert!(!m.dense_materialized());
        // Stats never materialize a layout.
        assert_eq!(m.stats().nnz, 4);
        assert_eq!(m.nnz(), 4);
        assert!(!m.csr_materialized());
        assert!(!m.csc_materialized());
    }

    #[test]
    fn row_only_traffic_never_builds_columns() {
        let m = DataMatrix::from_coo(sample_coo());
        for i in 0..m.rows() {
            let _ = m.row(i);
        }
        assert!(m.csr_materialized());
        assert!(!m.csc_materialized(), "row traffic must not build CSC");
    }

    #[test]
    fn col_only_traffic_never_builds_rows() {
        let m = DataMatrix::from_coo(sample_coo());
        for j in 0..m.cols() {
            let _ = m.col(j);
        }
        assert!(m.csc_materialized());
        assert!(!m.csr_materialized(), "column traffic must not build CSR");
    }

    #[test]
    fn clones_share_layout_caches() {
        let a = DataMatrix::from_coo(sample_coo());
        let b = a.clone();
        b.materialize_rows();
        assert!(a.csr_materialized(), "clones share the same cache");
        assert_eq!(a.resident_bytes(), b.resident_bytes());
    }

    #[test]
    fn resident_bytes_grow_with_materialization() {
        let m = DataMatrix::from_coo(sample_coo());
        let source_only = m.resident_bytes();
        m.materialize_rows();
        let with_rows = m.resident_bytes();
        assert!(with_rows > source_only);
        m.materialize_cols();
        assert!(m.resident_bytes() > with_rows);
        let _ = m.dense();
        assert!(m.dense_materialized());
        assert!(m.resident_bytes() > with_rows);
    }

    #[test]
    fn csr_and_csc_sources_prefill_their_layout() {
        let csr = sample_coo().to_csr();
        let m = DataMatrix::from_csr(csr.clone());
        assert!(m.csr_materialized());
        assert!(!m.csc_materialized());
        assert_eq!(m.csr(), &csr);

        let csc = sample_coo().to_csc();
        let m = DataMatrix::from_csc(csc.clone());
        assert!(m.csc_materialized());
        assert!(!m.csr_materialized());
        assert_eq!(m.csc(), &csc);
        assert_eq!(m.csr(), &csc.to_csr());
        assert_eq!(m.stats().nnz, 4);
    }

    #[test]
    fn get_reads_any_resident_layout() {
        let m = DataMatrix::from_coo(sample_coo());
        m.materialize_cols();
        assert_eq!(m.get(2, 1), 3.0);
        assert!(!m.csr_materialized(), "get prefers the resident layout");
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn select_rows_shard_is_row_only() {
        let m = DataMatrix::from_coo(sample_coo());
        let shard = m.select_rows(&[2, 0]);
        assert_eq!(shard.rows(), 2);
        assert!(shard.csr_materialized());
        assert!(!shard.csc_materialized());
        assert_eq!(shard.get(0, 1), 3.0);
        assert_eq!(shard.get(1, 0), 1.0);
    }

    proptest! {
        #[test]
        fn prop_views_match_concrete_layouts(
            entries in proptest::collection::btree_map((0usize..8, 0usize..6), -4.0f64..4.0, 0..30)
        ) {
            let mut coo = CooMatrix::new(8, 6);
            for (&(r, c), &v) in &entries {
                coo.push(r, c, v).unwrap();
            }
            let reference = coo.to_csr();
            let m = DataMatrix::from_coo(coo);
            // Row views match the standalone CSR bit for bit.
            for i in 0..m.rows() {
                let a = m.row(i);
                let b = reference.row(i);
                prop_assert_eq!(a.indices, b.indices);
                prop_assert_eq!(a.values, b.values);
            }
            // Column views match the standalone CSC bit for bit.
            let reference_csc = reference.to_csc();
            for j in 0..m.cols() {
                let a = m.col(j);
                let b = reference_csc.col(j);
                prop_assert_eq!(a.indices, b.indices);
                prop_assert_eq!(a.values, b.values);
            }
            // Stats computed lazily agree with the CSR-derived stats.
            prop_assert_eq!(m.stats(), &MatrixStats::from_csr(&reference));
        }

        #[test]
        fn prop_roundtrip_through_every_layout_preserves_values(
            entries in proptest::collection::btree_map((0usize..6, 0usize..6), -9.0f64..9.0, 0..24)
        ) {
            let mut coo = CooMatrix::new(6, 6);
            for (&(r, c), &v) in &entries {
                coo.push(r, c, v).unwrap();
            }
            let m = DataMatrix::from_coo(coo.clone());
            let dense = m.dense();
            let csr = m.csr();
            let csc = m.csc();
            for i in 0..6 {
                for j in 0..6 {
                    let expected = coo.to_dense(Layout::RowMajor).get(i, j);
                    prop_assert_eq!(csr.get(i, j), expected);
                    prop_assert_eq!(csc.get(i, j), expected);
                    prop_assert_eq!(dense.get(i, j), expected);
                }
            }
        }
    }
}
