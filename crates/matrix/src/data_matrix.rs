//! The unified storage layer: one logical matrix, plan-driven layouts.
//!
//! The paper treats the physical layout of the data matrix as an *engine
//! decision*: "DimmWitted always stores the dataset in a way that is
//! consistent with the access method" (Appendix A).  [`DataMatrix`] is the
//! storage object that makes that decision cheap to defer — it holds one
//! canonical source form (usually the COO triplets a generator emits) and
//! materializes the compressed layouts **lazily**, caching each one the
//! first time it is requested:
//!
//! * [`DataMatrix::csr`] — row-major compressed storage for row-wise access,
//! * [`DataMatrix::csc`] — column-major compressed storage for column-wise
//!   and column-to-row access,
//! * [`DataMatrix::dense`] — row-major dense storage for dense workloads.
//!
//! A plan that only ever walks rows therefore never allocates the CSC
//! arrays (and vice versa); the planner can eagerly materialize its chosen
//! layout up front with [`DataMatrix::materialize_rows`] /
//! [`DataMatrix::materialize_cols`] so no epoch pays the conversion cost.
//!
//! Two memory levers sit on top of the lazy caches:
//!
//! * [`DataMatrix::compact_source`] drops the canonical COO triplets once a
//!   compressed layout is resident, reclaiming the source's 16 bytes per
//!   non-zero (the resident layouts become canonical; anything still
//!   missing is converted from them).
//! * [`DataMatrix::row_range`] cuts a **zero-copy row shard**: a
//!   [`RowRangeView`] window `start..end` into the shared row layout's
//!   `indptr`.  The shard serves bit-identical row bytes through
//!   [`RowAccess`] without duplicating a single index or value — this is
//!   what makes NUMA row sharding free.
//!
//! Clones share the underlying storage (the handle is an `Arc`), so a
//! layout materialized through any clone — a dataset, a task, a shard
//! builder — is visible to every other holder, and the bytes are counted
//! once.  [`MatrixStats`] are computed from the canonical form without
//! materializing anything, which is what lets the cost-based optimizer pick
//! an access method (and hence a layout) *before* any layout exists.

use crate::views::{ColAccess, RowAccess};
use crate::{
    ColView, CooMatrix, CscMatrix, CsrMatrix, DenseMatrix, Layout, MatrixStats, RowView, Shape,
};
use std::sync::{Arc, OnceLock, RwLock};

/// A zero-copy window over a contiguous row range of another matrix.
///
/// The view holds a cheap handle to the base matrix (an `Arc` bump) plus the
/// `start..end` window into its row layout; every row it serves is the exact
/// slice pair the base's CSR serves, so reads through the view are
/// bit-identical to reads of rows `start..end` of the base.
#[derive(Debug, Clone)]
pub struct RowRangeView {
    base: DataMatrix,
    start: usize,
    end: usize,
}

impl RowRangeView {
    /// The matrix this view windows into.
    pub fn base(&self) -> &DataMatrix {
        &self.base
    }

    /// First base row of the window.
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last base row of the window.
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of rows in the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copy the windowed rows into a standalone CSR matrix (the escape
    /// hatch for consumers that need an owned layout; shard reads never do).
    fn materialize_csr(&self) -> CsrMatrix {
        self.base.csr().select_range(self.start, self.end)
    }
}

impl RowAccess for RowRangeView {
    fn shape(&self) -> Shape {
        Shape::new(self.len(), self.base.cols())
    }

    fn row(&self, i: usize) -> RowView<'_> {
        assert!(
            i < self.len(),
            "row {i} outside view of {} rows",
            self.len()
        );
        self.base.csr().row(self.start + i)
    }

    fn row_nnz(&self, i: usize) -> usize {
        assert!(
            i < self.len(),
            "row {i} outside view of {} rows",
            self.len()
        );
        self.base.csr().row_nnz(self.start + i)
    }
}

#[derive(Debug)]
struct Inner {
    shape: Shape,
    /// Canonical COO triplets; `None` for matrices built from a compressed
    /// layout, for row-range views, and after [`DataMatrix::compact_source`].
    source: RwLock<Option<CooMatrix>>,
    /// Zero-copy row window into another matrix (set only by `row_range`).
    window: Option<RowRangeView>,
    csr: OnceLock<CsrMatrix>,
    csc: OnceLock<CscMatrix>,
    dense: OnceLock<DenseMatrix>,
    stats: OnceLock<MatrixStats>,
}

/// A logical data matrix with lazily materialized, cached physical layouts.
///
/// Cloning is cheap (an `Arc` bump) and clones share the layout caches.
#[derive(Debug, Clone)]
pub struct DataMatrix {
    inner: Arc<Inner>,
}

impl DataMatrix {
    fn from_parts(shape: Shape, source: Option<CooMatrix>, window: Option<RowRangeView>) -> Self {
        DataMatrix {
            inner: Arc::new(Inner {
                shape,
                source: RwLock::new(source),
                window,
                csr: OnceLock::new(),
                csc: OnceLock::new(),
                dense: OnceLock::new(),
                stats: OnceLock::new(),
            }),
        }
    }

    /// Build from the canonical COO form; nothing is materialized yet.
    pub fn from_coo(coo: CooMatrix) -> Self {
        Self::from_parts(coo.shape(), Some(coo), None)
    }

    /// Build from an existing CSR matrix (counts as the row layout being
    /// materialized).
    pub fn from_csr(csr: CsrMatrix) -> Self {
        let m = Self::from_parts(csr.shape(), None, None);
        let _ = m.inner.csr.set(csr);
        m
    }

    /// Build from an existing CSC matrix (counts as the column layout being
    /// materialized).
    pub fn from_csc(csc: CscMatrix) -> Self {
        let m = Self::from_parts(csc.shape(), None, None);
        let _ = m.inner.csc.set(csc);
        m
    }

    /// Shape of the matrix.
    pub fn shape(&self) -> Shape {
        self.inner.shape
    }

    /// Number of rows (examples `N`).
    pub fn rows(&self) -> usize {
        self.inner.shape.rows
    }

    /// Number of columns (model dimension `d`).
    pub fn cols(&self) -> usize {
        self.inner.shape.cols
    }

    /// Number of stored non-zeros after duplicate merging / zero dropping.
    ///
    /// Computed from the cached statistics; never materializes a layout.
    pub fn nnz(&self) -> usize {
        self.stats().nnz
    }

    /// Matrix statistics for the cost-based optimizer.
    ///
    /// Computed once from the canonical source form (or from an
    /// already-materialized layout when one exists) and cached.  For a
    /// row-range view the per-row counts come from the base's row layout.
    pub fn stats(&self) -> &MatrixStats {
        self.inner.stats.get_or_init(|| {
            if let Some(csr) = self.inner.csr.get() {
                return MatrixStats::from_csr(csr);
            }
            if let Some(view) = &self.inner.window {
                return MatrixStats::from_row_counts(
                    view.len(),
                    self.inner.shape.cols,
                    (view.start..view.end).map(|i| view.base.csr().row_nnz(i)),
                );
            }
            let source = self.inner.source.read().expect("source lock poisoned");
            match &*source {
                Some(coo) => MatrixStats::from_coo(coo),
                None => {
                    // The source can only be absent when a layout exists
                    // (compaction's precondition); re-check the CSR cache —
                    // a concurrent materialize+compact may have landed
                    // between the unlocked check above and taking the lock.
                    if let Some(csr) = self.inner.csr.get() {
                        MatrixStats::from_csr(csr)
                    } else if let Some(csc) = self.inner.csc.get() {
                        MatrixStats::from_csc(csc)
                    } else {
                        let dense = self
                            .inner
                            .dense
                            .get()
                            .expect("a sourceless matrix always retains a layout");
                        MatrixStats::from_csr(&CsrMatrix::from_dense(dense))
                    }
                }
            }
        })
    }

    /// The row-major compressed layout, materialized and cached on first
    /// request.  For a row-range view this copies the window out of the
    /// base (shard *reads* never need it — they go through [`RowAccess`]).
    pub fn csr(&self) -> &CsrMatrix {
        self.inner.csr.get_or_init(|| {
            if let Some(view) = &self.inner.window {
                return view.materialize_csr();
            }
            let source = self.inner.source.read().expect("source lock poisoned");
            match &*source {
                Some(coo) => coo.to_csr(),
                None => {
                    if let Some(csc) = self.inner.csc.get() {
                        csc.to_csr()
                    } else {
                        let dense = self
                            .inner
                            .dense
                            .get()
                            .expect("a sourceless matrix always retains a layout");
                        CsrMatrix::from_dense(dense)
                    }
                }
            }
        })
    }

    /// The column-major compressed layout, materialized and cached on first
    /// request.  Built directly from the COO source (no transient CSR).
    pub fn csc(&self) -> &CscMatrix {
        self.inner.csc.get_or_init(|| {
            if self.inner.window.is_some() {
                return self.csr().to_csc();
            }
            let source = self.inner.source.read().expect("source lock poisoned");
            match &*source {
                Some(coo) => coo.to_csc(),
                None => {
                    drop(source);
                    self.csr().to_csc()
                }
            }
        })
    }

    /// The row-major dense layout, materialized and cached on first request.
    pub fn dense(&self) -> &DenseMatrix {
        self.inner.dense.get_or_init(|| {
            if let Some(csr) = self.inner.csr.get() {
                return csr.to_dense(Layout::RowMajor);
            }
            if let Some(csc) = self.inner.csc.get() {
                return csc.to_dense(Layout::RowMajor);
            }
            if self.inner.window.is_some() {
                return self.csr().to_dense(Layout::RowMajor);
            }
            let source = self.inner.source.read().expect("source lock poisoned");
            match &*source {
                Some(coo) => coo.to_dense(Layout::RowMajor),
                None => {
                    // A concurrent materialize+compact can empty the source
                    // between the unlocked layout checks above and taking
                    // the lock; the compacted layout is resident by then.
                    drop(source);
                    if let Some(csr) = self.inner.csr.get() {
                        csr.to_dense(Layout::RowMajor)
                    } else {
                        self.inner
                            .csc
                            .get()
                            .expect("a sourceless matrix always retains a layout")
                            .to_dense(Layout::RowMajor)
                    }
                }
            }
        })
    }

    /// Eagerly materialize the row layout (planner hook).  On a row-range
    /// view this materializes the *base's* shared layout, never a copy.
    pub fn materialize_rows(&self) {
        if let Some(view) = &self.inner.window {
            view.base.materialize_rows();
            return;
        }
        let _ = self.csr();
    }

    /// Eagerly materialize the column layout (planner hook).
    pub fn materialize_cols(&self) {
        let _ = self.csc();
    }

    fn csr_if_materialized(&self) -> Option<&CsrMatrix> {
        self.inner.csr.get()
    }

    fn csc_if_materialized(&self) -> Option<&CscMatrix> {
        self.inner.csc.get()
    }

    /// Whether row views can be served without a layout conversion.  True
    /// for a row-range view whenever the *base's* row layout is resident —
    /// the view itself never owns row storage.
    pub fn csr_materialized(&self) -> bool {
        if self.inner.csr.get().is_some() {
            return true;
        }
        match &self.inner.window {
            Some(view) => view.base.csr_materialized(),
            None => false,
        }
    }

    /// Whether the column-major compressed layout is resident.
    pub fn csc_materialized(&self) -> bool {
        self.inner.csc.get().is_some()
    }

    /// Whether the dense layout is resident.
    pub fn dense_materialized(&self) -> bool {
        self.inner.dense.get().is_some()
    }

    /// Bytes held by this handle: the source form (if still resident) plus
    /// every materialized layout — the quantity the memory-footprint
    /// regression tests bound.  A row-range view owns none of its base's
    /// bytes, so an unmaterialized view reports 0.
    pub fn resident_bytes(&self) -> usize {
        let source = self
            .inner
            .source
            .read()
            .expect("source lock poisoned")
            .as_ref()
            .map_or(0, |coo| coo.size_bytes());
        source
            + self.inner.csr.get().map_or(0, |m| m.size_bytes())
            + self.inner.csc.get().map_or(0, |m| m.size_bytes())
            + self
                .inner
                .dense
                .get()
                .map_or(0, |_| self.inner.shape.dense_len() * 8)
    }

    /// Drop the canonical COO triplets once a compressed layout is resident,
    /// returning the bytes reclaimed (16 per stored triplet).
    ///
    /// The resident compressed layouts become the canonical form: anything
    /// still missing is converted from them, so every read keeps working.
    /// A no-op (returning 0) when no compressed layout exists yet, when the
    /// matrix never had a COO source, or when it was already compacted.
    /// Affects every clone of the handle — compaction is a property of the
    /// shared storage, not of one holder.
    pub fn compact_source(&self) -> usize {
        let compressed_resident = self.inner.csr.get().is_some() || self.inner.csc.get().is_some();
        if !compressed_resident {
            return 0;
        }
        let mut source = self.inner.source.write().expect("source lock poisoned");
        match source.take() {
            Some(coo) => coo.size_bytes(),
            None => 0,
        }
    }

    /// Value at `(row, col)` (zero if not stored).  Reads whichever layout
    /// is already resident; materializes CSR only as a last resort.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if let Some(csr) = self.csr_if_materialized() {
            return csr.get(row, col);
        }
        if let Some(csc) = self.csc_if_materialized() {
            return csc.get(row, col);
        }
        if let Some(view) = &self.inner.window {
            return view.base.get(view.start + row, col);
        }
        self.csr().get(row, col)
    }

    /// An owned copy of the canonical COO source, when the matrix was built
    /// from one and the source has not been compacted away.  This clones
    /// the triplets — use [`DataMatrix::has_coo_source`] for a presence
    /// check.
    pub fn coo_source(&self) -> Option<CooMatrix> {
        self.inner
            .source
            .read()
            .expect("source lock poisoned")
            .clone()
    }

    /// Whether the canonical COO source is still resident (false for
    /// matrices built from a compressed layout, for row-range views, and
    /// after [`DataMatrix::compact_source`]).
    pub fn has_coo_source(&self) -> bool {
        self.inner
            .source
            .read()
            .expect("source lock poisoned")
            .is_some()
    }

    /// The row window this matrix views, when it is a zero-copy shard.
    pub fn row_window(&self) -> Option<(usize, usize)> {
        self.inner.window.as_ref().map(|v| (v.start, v.end))
    }

    /// Cut a **zero-copy** shard over the contiguous row range
    /// `start..end`: the shard shares the base's row layout through a
    /// [`RowRangeView`] and owns no element storage of its own.
    ///
    /// A view of a view flattens to a window over the root matrix, so
    /// chained sharding never stacks indirections.
    ///
    /// # Panics
    /// Panics unless `start <= end <= rows`.
    pub fn row_range(&self, start: usize, end: usize) -> DataMatrix {
        assert!(
            start <= end && end <= self.rows(),
            "row range {start}..{end} outside matrix of {} rows",
            self.rows()
        );
        let (base, offset) = match &self.inner.window {
            Some(view) => (view.base.clone(), view.start),
            None => (self.clone(), 0),
        };
        let cols = base.cols();
        Self::from_parts(
            Shape::new(end - start, cols),
            None,
            Some(RowRangeView {
                base,
                start: offset + start,
                end: offset + end,
            }),
        )
    }

    /// Cut a row shard as an owned copy (used where a shard must survive its
    /// base or carry reordered rows); prefer [`DataMatrix::row_range`] for
    /// contiguous shards, which is free.
    pub fn select_rows(&self, row_ids: &[usize]) -> DataMatrix {
        DataMatrix::from_csr(self.csr().select_rows(row_ids))
    }
}

impl From<CooMatrix> for DataMatrix {
    fn from(coo: CooMatrix) -> Self {
        DataMatrix::from_coo(coo)
    }
}

impl From<CsrMatrix> for DataMatrix {
    fn from(csr: CsrMatrix) -> Self {
        DataMatrix::from_csr(csr)
    }
}

impl From<CscMatrix> for DataMatrix {
    fn from(csc: CscMatrix) -> Self {
        DataMatrix::from_csc(csc)
    }
}

impl RowAccess for DataMatrix {
    fn shape(&self) -> Shape {
        self.inner.shape
    }

    fn row(&self, i: usize) -> RowView<'_> {
        if self.inner.csr.get().is_none() {
            if let Some(view) = &self.inner.window {
                return view.row(i);
            }
        }
        self.csr().row(i)
    }

    fn row_nnz(&self, i: usize) -> usize {
        if self.inner.csr.get().is_none() {
            if let Some(view) = &self.inner.window {
                return view.row_nnz(i);
            }
        }
        self.csr().row_nnz(i)
    }
}

impl ColAccess for DataMatrix {
    fn shape(&self) -> Shape {
        self.inner.shape
    }

    fn col(&self, j: usize) -> ColView<'_> {
        self.csc().col(j)
    }

    fn col_nnz(&self, j: usize) -> usize {
        self.csc().col_nnz(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_coo() -> CooMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [0, 3, 4]]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(2, 1, 3.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        coo
    }

    #[test]
    fn nothing_materialized_until_requested() {
        let m = DataMatrix::from_coo(sample_coo());
        assert!(!m.csr_materialized());
        assert!(!m.csc_materialized());
        assert!(!m.dense_materialized());
        // Stats never materialize a layout.
        assert_eq!(m.stats().nnz, 4);
        assert_eq!(m.nnz(), 4);
        assert!(!m.csr_materialized());
        assert!(!m.csc_materialized());
    }

    #[test]
    fn row_only_traffic_never_builds_columns() {
        let m = DataMatrix::from_coo(sample_coo());
        for i in 0..m.rows() {
            let _ = m.row(i);
        }
        assert!(m.csr_materialized());
        assert!(!m.csc_materialized(), "row traffic must not build CSC");
    }

    #[test]
    fn col_only_traffic_never_builds_rows() {
        let m = DataMatrix::from_coo(sample_coo());
        for j in 0..m.cols() {
            let _ = m.col(j);
        }
        assert!(m.csc_materialized());
        assert!(!m.csr_materialized(), "column traffic must not build CSR");
    }

    #[test]
    fn clones_share_layout_caches() {
        let a = DataMatrix::from_coo(sample_coo());
        let b = a.clone();
        b.materialize_rows();
        assert!(a.csr_materialized(), "clones share the same cache");
        assert_eq!(a.resident_bytes(), b.resident_bytes());
    }

    #[test]
    fn resident_bytes_grow_with_materialization() {
        let m = DataMatrix::from_coo(sample_coo());
        let source_only = m.resident_bytes();
        m.materialize_rows();
        let with_rows = m.resident_bytes();
        assert!(with_rows > source_only);
        m.materialize_cols();
        assert!(m.resident_bytes() > with_rows);
        let _ = m.dense();
        assert!(m.dense_materialized());
        assert!(m.resident_bytes() > with_rows);
    }

    #[test]
    fn csr_and_csc_sources_prefill_their_layout() {
        let csr = sample_coo().to_csr();
        let m = DataMatrix::from_csr(csr.clone());
        assert!(m.csr_materialized());
        assert!(!m.csc_materialized());
        assert_eq!(m.csr(), &csr);

        let csc = sample_coo().to_csc();
        let m = DataMatrix::from_csc(csc.clone());
        assert!(m.csc_materialized());
        assert!(!m.csr_materialized());
        assert_eq!(m.csc(), &csc);
        assert_eq!(m.csr(), &csc.to_csr());
        assert_eq!(m.stats().nnz, 4);
    }

    #[test]
    fn get_reads_any_resident_layout() {
        let m = DataMatrix::from_coo(sample_coo());
        m.materialize_cols();
        assert_eq!(m.get(2, 1), 3.0);
        assert!(!m.csr_materialized(), "get prefers the resident layout");
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn compact_source_reclaims_coo_bytes_once_a_layout_exists() {
        let m = DataMatrix::from_coo(sample_coo());
        // Nothing materialized yet: compaction must refuse (the triplets are
        // the only copy of the data).
        assert_eq!(m.compact_source(), 0);
        assert_eq!(m.stats().nnz, 4);

        m.materialize_rows();
        let before = m.resident_bytes();
        let reclaimed = m.compact_source();
        assert_eq!(reclaimed, 16 * 4, "16 bytes per stored triplet");
        assert_eq!(m.resident_bytes(), before - reclaimed);
        assert_eq!(m.resident_bytes(), m.csr().size_bytes());
        assert!(!m.has_coo_source());
        // Second compaction is a no-op.
        assert_eq!(m.compact_source(), 0);
        // Every read keeps working; the missing layouts convert from CSR.
        assert_eq!(m.get(2, 1), 3.0);
        assert_eq!(m.csc().get(0, 2), 2.0);
        assert_eq!(m.dense().get(2, 2), 4.0);
    }

    #[test]
    fn compact_source_is_shared_across_clones() {
        let a = DataMatrix::from_coo(sample_coo());
        let b = a.clone();
        a.materialize_rows();
        assert!(b.compact_source() > 0);
        assert!(!a.has_coo_source(), "compaction is storage-wide");
        assert_eq!(a.compact_source(), 0);
    }

    #[test]
    fn compacted_matrix_recomputes_stats_from_layouts() {
        let m = DataMatrix::from_coo(sample_coo());
        m.materialize_cols();
        m.compact_source();
        // Stats were never computed before compaction: they now come from
        // the resident CSC.
        assert_eq!(m.stats().nnz, 4);
        assert_eq!(m.stats(), &MatrixStats::from_csr(&sample_coo().to_csr()));
    }

    #[test]
    fn row_range_view_is_zero_copy_and_bit_identical() {
        let m = DataMatrix::from_coo(sample_coo());
        m.materialize_rows();
        let shard = m.row_range(1, 3);
        assert_eq!(shard.rows(), 2);
        assert_eq!(shard.row_window(), Some((1, 3)));
        // Zero-copy: the shard owns no element storage.
        assert_eq!(shard.resident_bytes(), 0);
        assert!(shard.csr_materialized(), "served by the base's layout");
        assert!(!shard.csc_materialized());
        // Bit-identical row bytes: the view serves the base's exact slices.
        for i in 0..2 {
            let a = shard.row(i);
            let b = m.row(1 + i);
            assert!(std::ptr::eq(a.indices, b.indices), "row {i} shares storage");
            assert!(std::ptr::eq(a.values, b.values), "row {i} shares storage");
        }
        assert_eq!(shard.get(0, 1), 0.0);
        assert_eq!(shard.get(1, 1), 3.0);
        assert_eq!(shard.stats().nnz, 2);
    }

    #[test]
    fn row_range_of_a_view_flattens_to_the_root() {
        let m = DataMatrix::from_coo(sample_coo());
        let outer = m.row_range(1, 3);
        let nested = outer.row_range(1, 2);
        assert_eq!(nested.row_window(), Some((2, 3)));
        assert_eq!(nested.rows(), 1);
        assert_eq!(nested.get(0, 2), 4.0);
    }

    #[test]
    fn row_range_materializes_base_rows_not_a_copy() {
        let m = DataMatrix::from_coo(sample_coo());
        let shard = m.row_range(0, 2);
        assert!(!m.csr_materialized());
        shard.materialize_rows();
        assert!(m.csr_materialized(), "the shared layout was built");
        assert_eq!(shard.resident_bytes(), 0, "the shard still owns nothing");
        // Forcing an owned layout out of the view still works (escape hatch).
        assert_eq!(shard.csr().rows(), 2);
        assert!(shard.resident_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "outside matrix")]
    fn row_range_bounds_checked() {
        let m = DataMatrix::from_coo(sample_coo());
        let _ = m.row_range(1, 4);
    }

    #[test]
    fn select_rows_shard_is_row_only() {
        let m = DataMatrix::from_coo(sample_coo());
        let shard = m.select_rows(&[2, 0]);
        assert_eq!(shard.rows(), 2);
        assert!(shard.csr_materialized());
        assert!(!shard.csc_materialized());
        assert_eq!(shard.get(0, 1), 3.0);
        assert_eq!(shard.get(1, 0), 1.0);
    }

    proptest! {
        #[test]
        fn prop_views_match_concrete_layouts(
            entries in proptest::collection::btree_map((0usize..8, 0usize..6), -4.0f64..4.0, 0..30)
        ) {
            let mut coo = CooMatrix::new(8, 6);
            for (&(r, c), &v) in &entries {
                coo.push(r, c, v).unwrap();
            }
            let reference = coo.to_csr();
            let m = DataMatrix::from_coo(coo);
            // Row views match the standalone CSR bit for bit.
            for i in 0..m.rows() {
                let a = m.row(i);
                let b = reference.row(i);
                prop_assert_eq!(a.indices, b.indices);
                prop_assert_eq!(a.values, b.values);
            }
            // Column views match the standalone CSC bit for bit.
            let reference_csc = reference.to_csc();
            for j in 0..m.cols() {
                let a = m.col(j);
                let b = reference_csc.col(j);
                prop_assert_eq!(a.indices, b.indices);
                prop_assert_eq!(a.values, b.values);
            }
            // Stats computed lazily agree with the CSR-derived stats.
            prop_assert_eq!(m.stats(), &MatrixStats::from_csr(&reference));
        }

        #[test]
        fn prop_row_range_views_serve_base_rows(
            entries in proptest::collection::btree_map((0usize..10, 0usize..5), -4.0f64..4.0, 0..40),
            start in 0usize..10,
            len in 0usize..10,
        ) {
            let mut coo = CooMatrix::new(10, 5);
            for (&(r, c), &v) in &entries {
                coo.push(r, c, v).unwrap();
            }
            let m = DataMatrix::from_coo(coo);
            let end = (start + len).min(10);
            let shard = m.row_range(start, end);
            prop_assert_eq!(shard.resident_bytes(), 0);
            for i in 0..shard.rows() {
                let a = shard.row(i);
                let b = m.row(start + i);
                prop_assert_eq!(a.indices, b.indices);
                prop_assert_eq!(a.values, b.values);
            }
            // An owned copy of the window agrees with the view.
            let owned = shard.csr().clone();
            for i in 0..shard.rows() {
                prop_assert_eq!(owned.row(i).indices, m.row(start + i).indices);
            }
        }

        #[test]
        fn prop_roundtrip_through_every_layout_preserves_values(
            entries in proptest::collection::btree_map((0usize..6, 0usize..6), -9.0f64..9.0, 0..24)
        ) {
            let mut coo = CooMatrix::new(6, 6);
            for (&(r, c), &v) in &entries {
                coo.push(r, c, v).unwrap();
            }
            let m = DataMatrix::from_coo(coo.clone());
            let dense = m.dense();
            let csr = m.csr();
            let csc = m.csc();
            for i in 0..6 {
                for j in 0..6 {
                    let expected = coo.to_dense(Layout::RowMajor).get(i, j);
                    prop_assert_eq!(csr.get(i, j), expected);
                    prop_assert_eq!(csc.get(i, j), expected);
                    prop_assert_eq!(dense.get(i, j), expected);
                }
            }
        }

        #[test]
        fn prop_compaction_preserves_every_read(
            entries in proptest::collection::btree_map((0usize..6, 0usize..6), -9.0f64..9.0, 0..24)
        ) {
            let mut coo = CooMatrix::new(6, 6);
            for (&(r, c), &v) in &entries {
                coo.push(r, c, v).unwrap();
            }
            let m = DataMatrix::from_coo(coo.clone());
            m.materialize_rows();
            m.compact_source();
            let reference = coo.to_csr();
            for i in 0..6 {
                for j in 0..6 {
                    prop_assert_eq!(m.get(i, j), reference.get(i, j));
                }
            }
            prop_assert_eq!(m.csc(), &reference.to_csc());
        }
    }
}
