//! The unified storage layer: one logical matrix, plan-driven layouts.
//!
//! The paper treats the physical layout of the data matrix as an *engine
//! decision*: "DimmWitted always stores the dataset in a way that is
//! consistent with the access method" (Appendix A).  [`DataMatrix`] is the
//! storage object that makes that decision cheap to defer — it holds one
//! canonical source form (usually the COO triplets a generator emits) and
//! materializes the compressed layouts **lazily**, caching each one the
//! first time it is requested:
//!
//! * [`DataMatrix::csr`] — row-major compressed storage for row-wise access,
//! * [`DataMatrix::csc`] — column-major compressed storage for column-wise
//!   and column-to-row access,
//! * [`DataMatrix::dense`] — row-major dense storage for dense workloads.
//!
//! A plan that only ever walks rows therefore never allocates the CSC
//! arrays (and vice versa); the planner can eagerly materialize its chosen
//! layout up front with [`DataMatrix::materialize_rows`] /
//! [`DataMatrix::materialize_cols`] so no epoch pays the conversion cost.
//!
//! Two memory levers sit on top of the lazy caches:
//!
//! * [`DataMatrix::compact_source`] drops the canonical COO triplets once a
//!   compressed layout is resident, reclaiming the source's 16 bytes per
//!   non-zero (the resident layouts become canonical; anything still
//!   missing is converted from them).
//! * [`DataMatrix::row_range`] / [`DataMatrix::col_range`] cut **zero-copy
//!   shards**: a [`RowRangeView`] (resp. [`ColRangeView`]) window
//!   `start..end` into the shared row layout's (resp. CSC's) `indptr`, both
//!   thin surfaces over one [`AxisRangeView`] core.  A shard serves
//!   bit-identical row/column bytes through [`RowAccess`] / [`ColAccess`]
//!   without duplicating a single index or value — this is what makes NUMA
//!   sharding free on either axis.
//!
//! Clones share the underlying storage (the handle is an `Arc`), so a
//! layout materialized through any clone — a dataset, a task, a shard
//! builder — is visible to every other holder, and the bytes are counted
//! once.  [`MatrixStats`] are computed from the canonical form without
//! materializing anything, which is what lets the cost-based optimizer pick
//! an access method (and hence a layout) *before* any layout exists.

use crate::dense::DenseRows;
use crate::kernels::{IndexEncoding, KernelVariant};
use crate::ooc::{self, MatrixSource, PagedSource};
use crate::storage::ByteExtent;
use crate::views::{ColAccess, RowAccess};
use crate::{
    ColView, CooMatrix, CscMatrix, CsrMatrix, DenseMatrix, Layout, MatrixStats, RowView, Shape,
};
use std::path::Path;
use std::sync::{Arc, OnceLock, RwLock};

/// The axis a zero-copy range view windows over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The view windows a contiguous row range (shares the base's row
    /// layout — what NUMA row sharding cuts).
    Rows,
    /// The view windows a contiguous column range (shares the base's CSC —
    /// what columnar sharding for the SCD family cuts).
    Cols,
}

/// Shared core of the zero-copy axis-range views: a cheap handle to the base
/// matrix (an `Arc` bump) plus the `start..end` window along one axis of its
/// shared layout.  The slicing, flattening, and paged-subrange logic lives
/// here once; [`RowRangeView`] and [`ColRangeView`] are the
/// orientation-typed surfaces over it.
///
/// Every stored vector the view serves along its axis is the exact slice
/// pair the base's compressed layout serves, so reads through the view are
/// bit-identical to reads of rows (resp. columns) `start..end` of the base.
#[derive(Debug, Clone)]
pub struct AxisRangeView {
    base: DataMatrix,
    axis: Axis,
    start: usize,
    end: usize,
}

impl AxisRangeView {
    /// The matrix this view windows into.
    pub fn base(&self) -> &DataMatrix {
        &self.base
    }

    /// The axis the window cuts along.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// First base row/column of the window.
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last base row/column of the window.
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of rows/columns in the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Shape of the windowed submatrix.
    fn window_shape(&self) -> Shape {
        match self.axis {
            Axis::Rows => Shape::new(self.len(), self.base.cols()),
            Axis::Cols => Shape::new(self.base.rows(), self.len()),
        }
    }

    /// Borrowed view of window row `i` (rows axis only): the base's exact
    /// slice pair for row `start + i`.
    fn row(&self, i: usize) -> RowView<'_> {
        debug_assert_eq!(self.axis, Axis::Rows);
        assert!(
            i < self.len(),
            "row {i} outside view of {} rows",
            self.len()
        );
        // Served through the base's resident row backend (CSR or dense
        // rows) — bit-identical to reading the base directly.
        self.base.row(self.start + i)
    }

    fn row_nnz(&self, i: usize) -> usize {
        debug_assert_eq!(self.axis, Axis::Rows);
        assert!(
            i < self.len(),
            "row {i} outside view of {} rows",
            self.len()
        );
        self.base.row_nnz(self.start + i)
    }

    /// Borrowed view of window column `j` (cols axis only): the base's exact
    /// slice pair for column `start + j`.
    fn col(&self, j: usize) -> ColView<'_> {
        debug_assert_eq!(self.axis, Axis::Cols);
        assert!(
            j < self.len(),
            "column {j} outside view of {} columns",
            self.len()
        );
        // Served through the base's shared CSC — bit-identical to reading
        // the base directly.
        self.base.col(self.start + j)
    }

    fn col_nnz(&self, j: usize) -> usize {
        debug_assert_eq!(self.axis, Axis::Cols);
        assert!(
            j < self.len(),
            "column {j} outside view of {} columns",
            self.len()
        );
        self.base.col_nnz(self.start + j)
    }

    /// Copy the windowed rows into a standalone CSR matrix (rows axis).  On
    /// an out-of-core base whose shared row layout is not resident, this
    /// streams **only the window's page subrange** through the base's
    /// bounded cache — the per-node shard materialization of the
    /// larger-than-DRAM path; otherwise it is the in-memory escape hatch
    /// (shard reads never need it — they go through [`RowAccess`]).
    fn materialize_csr(&self) -> CsrMatrix {
        debug_assert_eq!(self.axis, Axis::Rows);
        if self.base.inner.csr.get().is_none() {
            if let Some(paged) = self.base.inner.paged.get() {
                return DataMatrix::csr_from_paged(paged, self.start, self.end, self.base.cols());
            }
        }
        self.base.csr().select_range(self.start, self.end)
    }

    /// Copy the windowed columns into a standalone CSC matrix (cols axis) —
    /// the mirror of [`AxisRangeView::materialize_csr`].  On an out-of-core
    /// base whose shared column layout is not resident, only the window's
    /// column subrange is *materialized* — but because pages are
    /// row-disjoint, the streaming passes still read every page and filter
    /// (unlike the row mirror, which streams only its page subrange); the
    /// win is bounding the resident output, not the IO.  Sessions never hit
    /// this path — they materialize the base's shared CSC before cutting
    /// shards — so the per-shard full-source passes only occur on direct
    /// matrix-layer use.
    fn materialize_csc(&self) -> CscMatrix {
        debug_assert_eq!(self.axis, Axis::Cols);
        if self.base.inner.csc.get().is_none() {
            if let Some(paged) = self.base.inner.paged.get() {
                return DataMatrix::csc_from_paged_cols(
                    paged,
                    self.base.rows(),
                    self.start,
                    self.end,
                );
            }
        }
        self.base.csc().select_range(self.start, self.end)
    }
}

/// A zero-copy window over a contiguous **row** range of another matrix.
///
/// The view holds a cheap handle to the base matrix plus the `start..end`
/// window into its row layout; every row it serves is the exact slice pair
/// the base's CSR serves, so reads through the view are bit-identical to
/// reads of rows `start..end` of the base.
#[derive(Debug, Clone)]
pub struct RowRangeView {
    view: AxisRangeView,
}

impl RowRangeView {
    /// The matrix this view windows into.
    pub fn base(&self) -> &DataMatrix {
        self.view.base()
    }

    /// First base row of the window.
    pub fn start(&self) -> usize {
        self.view.start()
    }

    /// One past the last base row of the window.
    pub fn end(&self) -> usize {
        self.view.end()
    }

    /// Number of rows in the window.
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }
}

impl RowAccess for RowRangeView {
    fn shape(&self) -> Shape {
        self.view.window_shape()
    }

    fn row(&self, i: usize) -> RowView<'_> {
        self.view.row(i)
    }

    fn row_nnz(&self, i: usize) -> usize {
        self.view.row_nnz(i)
    }
}

/// A zero-copy window over a contiguous **column** range of another matrix —
/// the mirror of [`RowRangeView`] for the column-wise and column-to-row
/// access methods.
///
/// The view holds a cheap handle to the base matrix plus the `start..end`
/// window into its shared CSC; every column it serves is the exact slice
/// pair the base's CSC serves (row ids stay global), so reads through the
/// view are bit-identical to reads of columns `start..end` of the base.
#[derive(Debug, Clone)]
pub struct ColRangeView {
    view: AxisRangeView,
}

impl ColRangeView {
    /// The matrix this view windows into.
    pub fn base(&self) -> &DataMatrix {
        self.view.base()
    }

    /// First base column of the window.
    pub fn start(&self) -> usize {
        self.view.start()
    }

    /// One past the last base column of the window.
    pub fn end(&self) -> usize {
        self.view.end()
    }

    /// Number of columns in the window.
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }
}

impl ColAccess for ColRangeView {
    fn shape(&self) -> Shape {
        self.view.window_shape()
    }

    fn col(&self, j: usize) -> ColView<'_> {
        self.view.col(j)
    }

    fn col_nnz(&self, j: usize) -> usize {
        self.view.col_nnz(j)
    }
}

#[derive(Debug)]
struct Inner {
    shape: Shape,
    /// Canonical COO triplets; `None` for matrices built from a compressed
    /// layout, for row-range views, for out-of-core sources, and after
    /// [`DataMatrix::compact_source`] / [`DataMatrix::spill_source_to`].
    source: RwLock<Option<CooMatrix>>,
    /// Out-of-core canonical source: triplet pages behind a bounded cache
    /// (set by [`DataMatrix::from_source`] or
    /// [`DataMatrix::spill_source_to`]).
    paged: OnceLock<PagedSource>,
    /// Zero-copy row/column window into another matrix (set only by
    /// `row_range` / `col_range`).
    window: Option<AxisRangeView>,
    csr: OnceLock<CsrMatrix>,
    csc: OnceLock<CscMatrix>,
    dense: OnceLock<DenseMatrix>,
    /// Dense row-major storage served through `RowAccess` (the planner's
    /// Dense layout arm: 8 bytes per element plus one shared index arange).
    dense_rows: OnceLock<DenseRows>,
    stats: OnceLock<MatrixStats>,
}

/// A logical data matrix with lazily materialized, cached physical layouts.
///
/// Cloning is cheap (an `Arc` bump) and clones share the layout caches.
#[derive(Debug, Clone)]
pub struct DataMatrix {
    inner: Arc<Inner>,
}

impl DataMatrix {
    fn from_parts(shape: Shape, source: Option<CooMatrix>, window: Option<AxisRangeView>) -> Self {
        DataMatrix {
            inner: Arc::new(Inner {
                shape,
                source: RwLock::new(source),
                paged: OnceLock::new(),
                window,
                csr: OnceLock::new(),
                csc: OnceLock::new(),
                dense: OnceLock::new(),
                dense_rows: OnceLock::new(),
                stats: OnceLock::new(),
            }),
        }
    }

    /// Build from the canonical COO form; nothing is materialized yet.
    pub fn from_coo(coo: CooMatrix) -> Self {
        Self::from_parts(coo.shape(), Some(coo), None)
    }

    /// Build from an **out-of-core** canonical source: triplet pages (e.g. a
    /// [`crate::ooc::FileBackedSource`] spill file) served through a page
    /// cache bounded to `cache_budget_bytes` of resident payload.
    ///
    /// Nothing is materialized yet; layouts materialize by streaming pages
    /// through the cache, so the whole source never needs to be resident —
    /// this is the larger-than-DRAM entry point of Appendix C.3.
    pub fn from_source(source: Arc<dyn MatrixSource>, cache_budget_bytes: usize) -> Self {
        Self::from_source_with(source, cache_budget_bytes, None, None)
    }

    /// [`from_source`](Self::from_source) with streaming-ingest extras: a
    /// pre-computed [`MatrixStats`] (a live source maintains them
    /// incrementally, so the snapshot need not re-stream every page just to
    /// count non-zeros) and shared [`ooc::IngestCounters`] surfaced through
    /// [`ooc_stats`](Self::ooc_stats).
    pub fn from_source_with(
        source: Arc<dyn MatrixSource>,
        cache_budget_bytes: usize,
        stats: Option<MatrixStats>,
        ingest: Option<Arc<ooc::IngestCounters>>,
    ) -> Self {
        let shape = source.shape();
        let m = Self::from_parts(shape, None, None);
        let mut paged = PagedSource::new(source, cache_budget_bytes);
        if let Some(counters) = ingest {
            paged = paged.with_ingest(counters);
        }
        let _ = m.inner.paged.set(paged);
        if let Some(stats) = stats {
            debug_assert_eq!(stats.rows, shape.rows);
            debug_assert_eq!(stats.cols, shape.cols);
            let _ = m.inner.stats.set(stats);
        }
        m
    }

    /// Build from an existing CSR matrix (counts as the row layout being
    /// materialized).
    pub fn from_csr(csr: CsrMatrix) -> Self {
        let m = Self::from_parts(csr.shape(), None, None);
        let _ = m.inner.csr.set(csr);
        m
    }

    /// Build from an existing CSC matrix (counts as the column layout being
    /// materialized).
    pub fn from_csc(csc: CscMatrix) -> Self {
        let m = Self::from_parts(csc.shape(), None, None);
        let _ = m.inner.csc.set(csc);
        m
    }

    /// Re-open the layouts persisted at `path` as a sourceless matrix — the
    /// serving-restart path: every persisted layout counts as materialized,
    /// served in place from the file image (a real `mmap` under the `mmap`
    /// feature), and no COO source is ever streamed.
    pub fn open_persisted(path: &std::path::Path) -> std::io::Result<Self> {
        let persisted = crate::persist::PersistedLayouts::open(path)?;
        let m = Self::from_parts(persisted.shape(), None, None);
        m.adopt_persisted(persisted);
        Ok(m)
    }

    /// Adopt the layouts persisted at `path` into this matrix, skipping
    /// kinds already materialized.  Returns how many layouts were adopted.
    ///
    /// This is the session-start fast path: with the row/column layout
    /// adopted from the file, `materialize_*` is a no-op and the COO source
    /// (paged or resident) is never re-streamed.
    pub fn load_persisted_layouts(&self, path: &std::path::Path) -> std::io::Result<usize> {
        let persisted = crate::persist::PersistedLayouts::open(path)?;
        if persisted.shape() != self.inner.shape {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "persisted layouts are {:?}, matrix is {:?}",
                    persisted.shape(),
                    self.inner.shape
                ),
            ));
        }
        Ok(self.adopt_persisted(persisted))
    }

    fn adopt_persisted(&self, persisted: crate::persist::PersistedLayouts) -> usize {
        let mut adopted = 0;
        if let Some(csr) = persisted.csr {
            adopted += usize::from(self.inner.csr.set(csr).is_ok());
        }
        if let Some(csc) = persisted.csc {
            adopted += usize::from(self.inner.csc.set(csc).is_ok());
        }
        if let Some(dense) = persisted.dense {
            adopted += usize::from(self.inner.dense.set(dense).is_ok());
        }
        if let Some(dense_rows) = persisted.dense_rows {
            adopted += usize::from(self.inner.dense_rows.set(dense_rows).is_ok());
        }
        adopted
    }

    /// The set of layouts currently materialized.
    pub fn materialized_kinds(&self) -> crate::persist::LayoutKinds {
        crate::persist::LayoutKinds {
            csr: self.inner.csr.get().is_some(),
            csc: self.inner.csc.get().is_some(),
            dense: self.inner.dense.get().is_some(),
            dense_rows: self.inner.dense_rows.get().is_some(),
        }
    }

    /// Serialize every materialized layout to `path` in the page-aligned
    /// `.dwlt` format (write-to-temp + atomic rename).  Returns the number
    /// of layouts written; 0 (and no file) when nothing is materialized.
    pub fn persist_layouts(&self, path: &std::path::Path) -> std::io::Result<usize> {
        let src = crate::persist::PersistSource {
            shape: self.inner.shape,
            csr: self.inner.csr.get().map(|m| m.sections()),
            csc: self.inner.csc.get().map(|m| m.sections()),
            dense: self.inner.dense.get().map(|m| (m.layout(), m.data())),
            dense_rows: self.inner.dense_rows.get().map(|m| m.values()),
        };
        crate::persist::write_layout_file(path, &src)
    }

    /// Persist the materialized layouts to `path` unless the file already
    /// covers them (cheap header check).  Returns the number of layouts
    /// written, 0 when the file was already up to date (or nothing is
    /// materialized).
    pub fn sync_persisted_layouts(&self, path: &std::path::Path) -> std::io::Result<usize> {
        let have = self.materialized_kinds();
        if have.is_empty() {
            return Ok(0);
        }
        match crate::persist::persisted_kinds(path) {
            Ok(on_disk) if on_disk.covers(&have) => Ok(0),
            // Missing, stale, or unreadable — (re)write it.
            _ => self.persist_layouts(path),
        }
    }

    /// Start a [`Prefetcher`](crate::ooc::Prefetcher) walking the paged
    /// source's manifest `depth` pages ahead of the consuming stream.
    ///
    /// Returns `None` when the matrix has no paged source or `depth` is 0.
    /// Hold the handle across the materialization pass; dropping it stops
    /// the thread.
    pub fn start_prefetch(&self, depth: usize) -> Option<crate::ooc::Prefetcher> {
        self.inner.paged.get()?.start_prefetch(depth)
    }

    /// Shape of the matrix.
    pub fn shape(&self) -> Shape {
        self.inner.shape
    }

    /// Number of rows (examples `N`).
    pub fn rows(&self) -> usize {
        self.inner.shape.rows
    }

    /// Number of columns (model dimension `d`).
    pub fn cols(&self) -> usize {
        self.inner.shape.cols
    }

    /// Number of stored non-zeros after duplicate merging / zero dropping.
    ///
    /// Computed from the cached statistics; never materializes a layout.
    pub fn nnz(&self) -> usize {
        self.stats().nnz
    }

    /// Matrix statistics for the cost-based optimizer.
    ///
    /// Computed once from the canonical source form (or from an
    /// already-materialized layout when one exists) and cached.  For a
    /// row-range view the per-row counts come from the base's row layout.
    pub fn stats(&self) -> &MatrixStats {
        self.inner.stats.get_or_init(|| {
            if let Some(csr) = self.inner.csr.get() {
                return MatrixStats::from_csr(csr);
            }
            if let Some(view) = &self.inner.window {
                match view.axis {
                    Axis::Rows => {
                        if view.base.inner.csr.get().is_none() {
                            if let Some(paged) = view.base.inner.paged.get() {
                                // Out-of-core base: one streaming pass over
                                // the window's page subrange, nothing
                                // materialized.
                                return Self::stats_from_paged(
                                    paged,
                                    view.start,
                                    view.end,
                                    self.inner.shape.cols,
                                );
                            }
                        }
                        return MatrixStats::from_row_counts(
                            view.len(),
                            self.inner.shape.cols,
                            (view.start..view.end).map(|i| view.base.row_nnz(i)),
                        );
                    }
                    Axis::Cols => {
                        if view.base.inner.csc.get().is_none() {
                            if let Some(paged) = view.base.inner.paged.get() {
                                // One filtered streaming pass: only entries
                                // whose column falls inside the window count.
                                return Self::stats_from_paged_cols(
                                    paged,
                                    self.inner.shape.rows,
                                    view.start,
                                    view.end,
                                );
                            }
                        }
                        // Per-row counts of the column window, accumulated
                        // from the base's shared CSC.
                        let mut counts = vec![0usize; self.inner.shape.rows];
                        for j in view.start..view.end {
                            for i in view.base.col(j).rows() {
                                counts[i] += 1;
                            }
                        }
                        return MatrixStats::from_row_counts(
                            self.inner.shape.rows,
                            view.len(),
                            counts.into_iter(),
                        );
                    }
                }
            }
            if let Some(stats) = self.with_coo_source(MatrixStats::from_coo) {
                return stats;
            }
            if let Some(paged) = self.inner.paged.get() {
                // One streaming pass over the manifest + pages.
                return Self::stats_from_paged(
                    paged,
                    0,
                    self.inner.shape.rows,
                    self.inner.shape.cols,
                );
            }
            // The source can only be absent when a layout exists
            // (compaction's precondition); re-check the CSR cache —
            // a concurrent materialize+compact may have landed
            // between the unlocked check above and taking the lock.
            if let Some(csr) = self.inner.csr.get() {
                MatrixStats::from_csr(csr)
            } else if let Some(csc) = self.inner.csc.get() {
                MatrixStats::from_csc(csc)
            } else if let Some(rows) = self.inner.dense_rows.get() {
                MatrixStats::from_row_counts(
                    rows.rows(),
                    rows.cols(),
                    (0..rows.rows())
                        .map(|i| rows.row(i).values.iter().filter(|v| **v != 0.0).count()),
                )
            } else {
                let dense = self
                    .inner
                    .dense
                    .get()
                    .expect("a sourceless matrix always retains a layout");
                MatrixStats::from_csr(&CsrMatrix::from_dense(dense))
            }
        })
    }

    /// Statistics of rows `start..end` of a paged source: merged per-row
    /// counts from one streaming pass through the bounded cache.
    fn stats_from_paged(paged: &PagedSource, start: usize, end: usize, cols: usize) -> MatrixStats {
        let mut counts = vec![0usize; end - start];
        paged
            .stream_rows(start, end, |row, _, _| counts[row - start] += 1)
            .expect("out-of-core source read failed while computing statistics");
        MatrixStats::from_row_counts(end - start, cols, counts.into_iter())
    }

    /// Statistics of columns `col_start..col_end` of a paged source: merged
    /// per-row counts restricted to the column window, one filtered
    /// streaming pass through the bounded cache.
    fn stats_from_paged_cols(
        paged: &PagedSource,
        rows: usize,
        col_start: usize,
        col_end: usize,
    ) -> MatrixStats {
        let mut counts = vec![0usize; rows];
        paged
            .stream_rows(0, rows, |row, col, _| {
                if (col_start..col_end).contains(&col) {
                    counts[row] += 1;
                }
            })
            .expect("out-of-core source read failed while computing statistics");
        MatrixStats::from_row_counts(rows, col_end - col_start, counts.into_iter())
    }

    /// The row-major compressed layout, materialized and cached on first
    /// request.  For a row-range view this copies the window out of the
    /// base (shard *reads* never need it — they go through [`RowAccess`]).
    /// For an out-of-core source the layout is built by **streaming pages
    /// through the bounded cache** — the whole source is never resident,
    /// and the result is bit-identical to the COO conversion.
    pub fn csr(&self) -> &CsrMatrix {
        self.inner.csr.get_or_init(|| {
            if let Some(view) = &self.inner.window {
                return match view.axis {
                    Axis::Rows => view.materialize_csr(),
                    // Escape hatch for a column window: an owned copy of the
                    // windowed submatrix, converted from its column layout
                    // (shard reads never need it — columns go through
                    // [`ColAccess`], rows through the base).
                    Axis::Cols => self.csc().to_csr(),
                };
            }
            if let Some(csr) = self.with_coo_source(|coo| coo.to_csr()) {
                return csr;
            }
            if let Some(paged) = self.inner.paged.get() {
                return Self::csr_from_paged(
                    paged,
                    0,
                    self.inner.shape.rows,
                    self.inner.shape.cols,
                );
            }
            if let Some(csc) = self.inner.csc.get() {
                csc.to_csr()
            } else if let Some(dense) = self.inner.dense.get() {
                CsrMatrix::from_dense(dense)
            } else {
                let rows = self
                    .inner
                    .dense_rows
                    .get()
                    .expect("a sourceless matrix always retains a layout");
                Self::csr_from_dense_rows(rows)
            }
        })
    }

    /// Build the CSR of global rows `start..end` from a paged source, one
    /// streaming pass through the bounded cache.  Replicates the exact
    /// indptr-building loop of [`CooMatrix::to_csr`], so the full-range
    /// result is bit-identical to the in-memory conversion and a subrange
    /// equals `full.select_range(start, end)`.
    fn csr_from_paged(paged: &PagedSource, start: usize, end: usize, cols: usize) -> CsrMatrix {
        let rows_out = end - start;
        let mut indptr = Vec::with_capacity(rows_out + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0u32);
        let mut current_row = start;
        paged
            .stream_rows(start, end, |row, col, value| {
                while current_row < row {
                    indptr.push(indices.len() as u32);
                    current_row += 1;
                }
                indices.push(col as u32);
                data.push(value);
            })
            .expect("out-of-core source read failed while materializing CSR");
        while current_row < end {
            indptr.push(indices.len() as u32);
            current_row += 1;
        }
        CsrMatrix::from_parts(rows_out, cols, indptr, indices, data)
            .expect("paged stream produced a structurally valid CSR")
    }

    /// CSR from the dense row store (sourceless fallback), dropping zeros
    /// exactly as [`CsrMatrix::from_dense`] does.
    fn csr_from_dense_rows(rows: &DenseRows) -> CsrMatrix {
        let dense = DenseMatrix::from_vec(
            rows.rows(),
            rows.cols(),
            Layout::RowMajor,
            rows.values().to_vec(),
        )
        .expect("dense rows carry a full row-major buffer");
        CsrMatrix::from_dense(&dense)
    }

    /// The column-major compressed layout, materialized and cached on first
    /// request.  Built directly from the COO source (no transient CSR); an
    /// out-of-core source builds it in two streaming passes (count, then
    /// scatter) through the bounded cache, again without a transient CSR.
    pub fn csc(&self) -> &CscMatrix {
        self.inner.csc.get_or_init(|| {
            if let Some(view) = &self.inner.window {
                return match view.axis {
                    // Escape hatch for a row window: an owned copy of the
                    // windowed submatrix, converted from its row layout.
                    Axis::Rows => self.csr().to_csc(),
                    Axis::Cols => view.materialize_csc(),
                };
            }
            if let Some(csc) = self.with_coo_source(|coo| coo.to_csc()) {
                return csc;
            }
            if self.inner.csr.get().is_none() {
                if let Some(paged) = self.inner.paged.get() {
                    return Self::csc_from_paged(paged, self.inner.shape);
                }
            }
            self.csr().to_csc()
        })
    }

    /// Build the CSC from a paged source in two streaming passes.  Within
    /// each column, rows arrive in ascending order (pages are row-disjoint
    /// and streamed in row order) and each `(row, col)` appears exactly once
    /// after merging, so the result is bit-identical to
    /// [`CooMatrix::to_csc`].
    fn csc_from_paged(paged: &PagedSource, shape: Shape) -> CscMatrix {
        // Pass 1: merged per-column counts.
        let mut counts = vec![0u32; shape.cols];
        paged
            .stream_rows(0, shape.rows, |_, col, _| counts[col] += 1)
            .expect("out-of-core source read failed while counting columns");
        let mut indptr = Vec::with_capacity(shape.cols + 1);
        indptr.push(0u32);
        let mut acc = 0u32;
        for &c in &counts {
            acc += c;
            indptr.push(acc);
        }
        let nnz = acc as usize;
        let mut indices = vec![0u32; nnz];
        let mut data = vec![0.0f64; nnz];
        // Pass 2: scatter in row-major stream order.
        let mut cursors: Vec<u32> = indptr[..shape.cols].to_vec();
        paged
            .stream_rows(0, shape.rows, |row, col, value| {
                let pos = cursors[col] as usize;
                indices[pos] = row as u32;
                data[pos] = value;
                cursors[col] += 1;
            })
            .expect("out-of-core source read failed while materializing CSC");
        CscMatrix::from_parts(shape.rows, shape.cols, indptr, indices, data)
            .expect("paged stream produced a structurally valid CSC")
    }

    /// Build the CSC of global columns `col_start..col_end` from a paged
    /// source in two filtered streaming passes — the column mirror of
    /// [`DataMatrix::csr_from_paged`].  Row ids stay global, column ids are
    /// local to the window, and the result equals
    /// `full_csc.select_range(col_start, col_end)` bit for bit.
    fn csc_from_paged_cols(
        paged: &PagedSource,
        rows: usize,
        col_start: usize,
        col_end: usize,
    ) -> CscMatrix {
        let cols_out = col_end - col_start;
        // Pass 1: merged per-column counts inside the window.
        let mut counts = vec![0u32; cols_out];
        paged
            .stream_rows(0, rows, |_, col, _| {
                if (col_start..col_end).contains(&col) {
                    counts[col - col_start] += 1;
                }
            })
            .expect("out-of-core source read failed while counting columns");
        let mut indptr = Vec::with_capacity(cols_out + 1);
        indptr.push(0u32);
        let mut acc = 0u32;
        for &c in &counts {
            acc += c;
            indptr.push(acc);
        }
        let nnz = acc as usize;
        let mut indices = vec![0u32; nnz];
        let mut data = vec![0.0f64; nnz];
        // Pass 2: scatter in row-major stream order (rows ascend within each
        // column, exactly as the full-range conversion scatters them).
        let mut cursors: Vec<u32> = indptr[..cols_out].to_vec();
        paged
            .stream_rows(0, rows, |row, col, value| {
                if (col_start..col_end).contains(&col) {
                    let pos = cursors[col - col_start] as usize;
                    indices[pos] = row as u32;
                    data[pos] = value;
                    cursors[col - col_start] += 1;
                }
            })
            .expect("out-of-core source read failed while materializing CSC");
        CscMatrix::from_parts(rows, cols_out, indptr, indices, data)
            .expect("paged stream produced a structurally valid CSC")
    }

    /// The row-major dense layout, materialized and cached on first request.
    pub fn dense(&self) -> &DenseMatrix {
        self.inner.dense.get_or_init(|| {
            if let Some(csr) = self.inner.csr.get() {
                return csr.to_dense(Layout::RowMajor);
            }
            if let Some(csc) = self.inner.csc.get() {
                return csc.to_dense(Layout::RowMajor);
            }
            if self.inner.window.is_some() {
                return self.csr().to_dense(Layout::RowMajor);
            }
            if let Some(dense) = self.with_coo_source(|coo| coo.to_dense(Layout::RowMajor)) {
                return dense;
            }
            if let Some(paged) = self.inner.paged.get() {
                let mut m = DenseMatrix::zeros(
                    self.inner.shape.rows,
                    self.inner.shape.cols,
                    Layout::RowMajor,
                );
                paged
                    .stream_rows(0, self.inner.shape.rows, |row, col, value| {
                        m.set(row, col, value);
                    })
                    .expect("out-of-core source read failed while materializing dense");
                return m;
            }
            // A concurrent materialize+compact can empty the source
            // between the unlocked layout checks above and taking
            // the lock; the compacted layout is resident by then.
            if let Some(csr) = self.inner.csr.get() {
                csr.to_dense(Layout::RowMajor)
            } else if let Some(csc) = self.inner.csc.get() {
                csc.to_dense(Layout::RowMajor)
            } else {
                let rows = self
                    .inner
                    .dense_rows
                    .get()
                    .expect("a sourceless matrix always retains a layout");
                let mut m = DenseMatrix::zeros(rows.rows(), rows.cols(), Layout::RowMajor);
                for i in 0..rows.rows() {
                    for (j, v) in rows.row(i).iter() {
                        m.set(i, j, v);
                    }
                }
                m
            }
        })
    }

    /// The dense row-major `RowAccess` backend (the planner's Dense layout
    /// arm), materialized and cached on first request: 8 bytes per element
    /// plus one shared `0..d` index arange, serving row views bit-identical
    /// to the CSR views of a fully dense matrix.
    pub fn dense_rows(&self) -> &DenseRows {
        self.inner.dense_rows.get_or_init(|| {
            let shape = self.inner.shape;
            if self.inner.csr.get().is_none() && self.inner.window.is_none() {
                if let Some(out) = self.with_coo_source(|coo| {
                    let mut out = DenseRows::zeros(shape.rows, shape.cols);
                    crate::coo::merge_triplets(coo.entries(), false, |r, c, v| out.set(r, c, v));
                    out
                }) {
                    return out;
                }
                if let Some(paged) = self.inner.paged.get() {
                    let mut out = DenseRows::zeros(shape.rows, shape.cols);
                    paged
                        .stream_rows(0, shape.rows, |r, c, v| out.set(r, c, v))
                        .expect("out-of-core source read failed while materializing dense rows");
                    return out;
                }
            }
            // Resident CSR, window, or sourceless-with-other-layouts: scatter
            // from the row layout (csr() serves the resident one for free and
            // is the correctness net for the rest).
            let csr = self.csr();
            let mut out = DenseRows::zeros(shape.rows, shape.cols);
            for i in 0..shape.rows {
                for (j, v) in csr.row(i).iter() {
                    out.set(i, j, v);
                }
            }
            out
        })
    }

    /// Eagerly materialize the row layout (planner hook).  On a row-range
    /// view this materializes the *base's* shared layout, never a copy —
    /// except over an out-of-core base whose shared layout is not resident,
    /// where the view materializes **its own page subrange** instead (the
    /// per-node on-demand shard materialization of the larger-than-DRAM
    /// path).
    pub fn materialize_rows(&self) {
        if let Some(view) = &self.inner.window {
            if view.axis == Axis::Rows {
                if !view.base.serves_window_rows() {
                    let _ = self.csr();
                    return;
                }
                view.base.materialize_row_access();
                return;
            }
        }
        let _ = self.csr();
    }

    /// Eagerly materialize the dense row-major `RowAccess` backend (the
    /// planner hook for the Dense layout arm).
    pub fn materialize_dense_rows(&self) {
        let _ = self.dense_rows();
    }

    /// Materialize *a* row backend: a no-op when dense rows are already
    /// resident (the Dense layout arm), the row layout otherwise.  Shard
    /// builders use this so they never build CSR next to a dense store.
    pub fn materialize_row_access(&self) {
        if self.dense_rows_materialized() {
            return;
        }
        self.materialize_rows();
    }

    /// Eagerly materialize the column layout (planner hook).  On a
    /// column-range view this materializes the *base's* shared CSC, never a
    /// copy — except over an out-of-core base whose shared layout is not
    /// resident, where the view materializes **its own column subrange**
    /// instead (the mirror of [`DataMatrix::materialize_rows`]).
    pub fn materialize_cols(&self) {
        if let Some(view) = &self.inner.window {
            if view.axis == Axis::Cols {
                if !view.base.serves_window_cols() {
                    let _ = self.csc();
                    return;
                }
                view.base.materialize_cols();
                return;
            }
        }
        let _ = self.csc();
    }

    fn csr_if_materialized(&self) -> Option<&CsrMatrix> {
        self.inner.csr.get()
    }

    fn csc_if_materialized(&self) -> Option<&CscMatrix> {
        self.inner.csc.get()
    }

    /// Whether row views can be served without a layout conversion.  True
    /// for a row-range view whenever the *base's* row layout is resident —
    /// the view itself never owns row storage.
    pub fn csr_materialized(&self) -> bool {
        if self.inner.csr.get().is_some() {
            return true;
        }
        match &self.inner.window {
            Some(view) if view.axis == Axis::Rows => view.base.csr_materialized(),
            _ => false,
        }
    }

    /// Whether column views can be served without a layout conversion.  True
    /// for a column-range view whenever the *base's* CSC is resident — the
    /// view itself never owns column storage.
    pub fn csc_materialized(&self) -> bool {
        if self.inner.csc.get().is_some() {
            return true;
        }
        match &self.inner.window {
            Some(view) if view.axis == Axis::Cols => view.base.csc_materialized(),
            _ => false,
        }
    }

    /// Whether the dense layout is resident.
    pub fn dense_materialized(&self) -> bool {
        self.inner.dense.get().is_some()
    }

    /// Whether the dense row-major `RowAccess` backend is resident (on a
    /// row-range view: whether the *base's* is — the view serves through
    /// it, owning nothing).
    pub fn dense_rows_materialized(&self) -> bool {
        if self.inner.dense_rows.get().is_some() {
            return true;
        }
        match &self.inner.window {
            Some(view) if view.axis == Axis::Rows => view.base.dense_rows_materialized(),
            _ => false,
        }
    }

    /// Whether the canonical source is out-of-core (triplet pages behind a
    /// bounded cache rather than resident COO).
    pub fn is_paged(&self) -> bool {
        self.inner.paged.get().is_some()
    }

    /// Whether a zero-copy window over this matrix should serve rows
    /// *through* it: a row backend (CSR or dense rows) is resident, or the
    /// matrix is in-memory and will materialize its shared layout lazily
    /// (the pre-out-of-core behaviour).  When false — an out-of-core base
    /// with nothing resident — the window materializes its own page
    /// subrange instead of forcing the base's full layout.
    fn serves_window_rows(&self) -> bool {
        self.csr_materialized() || self.dense_rows_materialized() || !self.is_paged()
    }

    /// The column mirror of [`DataMatrix::serves_window_rows`]: whether a
    /// zero-copy column window over this matrix should serve columns
    /// *through* it.  When false — an out-of-core base with no resident CSC
    /// — the window materializes its own column subrange instead of forcing
    /// the base's full layout.
    fn serves_window_cols(&self) -> bool {
        self.csc_materialized() || !self.is_paged()
    }

    /// Build the block-compressed index sidecar of whatever sparse layouts
    /// are resident (and, for a zero-copy window, of its base's), so no
    /// epoch pays the one-time encode.  A no-op when nothing sparse is
    /// materialized — the sidecar only ever rides beside an existing
    /// layout.
    pub fn materialize_encoded_indices(&self) {
        if let Some(csr) = self.csr_if_materialized() {
            let _ = csr.encoded_indices();
        }
        if let Some(csc) = self.csc_if_materialized() {
            let _ = csc.encoded_indices();
        }
        if let Some(view) = &self.inner.window {
            view.base.materialize_encoded_indices();
        }
    }

    /// Dot product of row `i` with a dense slice through an explicit
    /// kernel decision — the per-plan entry point behind every objective's
    /// row read.
    ///
    /// Under [`IndexEncoding::DeltaU16`] the indices stream through the
    /// block-compressed sidecar of whichever CSR actually backs row `i`
    /// (the base's for a zero-copy row shard); when no CSR is resident —
    /// the Dense layout arm, or a column window — the raw row view is used
    /// with the selected variant instead, so the decision degrades to a
    /// variant choice rather than forcing a layout.  Under
    /// [`KernelVariant::Reference`] the result is bit-identical to
    /// `self.row(i).dot(x)` whatever the encoding.
    pub fn row_dot_with(
        &self,
        i: usize,
        x: &[f64],
        variant: KernelVariant,
        encoding: IndexEncoding,
    ) -> f64 {
        if encoding == IndexEncoding::DeltaU16 {
            if let Some(csr) = self.csr_if_materialized() {
                return csr.row_dot_encoded(i, x, variant);
            }
            if let Some(view) = &self.inner.window {
                if view.axis == Axis::Rows && view.base.serves_window_rows() {
                    return view.base.row_dot_with(view.start + i, x, variant, encoding);
                }
            }
        }
        let row = self.row(i);
        crate::kernels::dot_indexed_with(variant, row.indices, row.values, x)
    }

    /// Dot product of column `j` with a dense slice through an explicit
    /// kernel decision — the columnar mirror of
    /// [`DataMatrix::row_dot_with`], reading the CSC sidecar (the base's
    /// for a zero-copy column shard) under [`IndexEncoding::DeltaU16`].
    pub fn col_dot_with(
        &self,
        j: usize,
        y: &[f64],
        variant: KernelVariant,
        encoding: IndexEncoding,
    ) -> f64 {
        if encoding == IndexEncoding::DeltaU16 {
            if let Some(csc) = self.csc_if_materialized() {
                return csc.col_dot_encoded(j, y, variant);
            }
            if let Some(view) = &self.inner.window {
                if view.axis == Axis::Cols && view.base.serves_window_cols() {
                    return view.base.col_dot_with(view.start + j, y, variant, encoding);
                }
            }
        }
        let col = self.col(j);
        crate::kernels::dot_indexed_with(variant, col.indices, col.values, y)
    }

    /// Page-cache counters of the out-of-core source (`None` for fully
    /// resident matrices): faults, IO bytes, resident and peak-resident
    /// page bytes.
    pub fn ooc_stats(&self) -> Option<ooc::CacheStats> {
        self.inner.paged.get().map(|p| p.stats())
    }

    /// The resident-byte budget of the out-of-core page cache.
    pub fn ooc_cache_budget(&self) -> Option<usize> {
        self.inner.paged.get().map(|p| p.cache().budget())
    }

    /// Drop every unpinned cached page of the out-of-core source (a no-op
    /// for resident matrices).  Sessions call this once the plan's layouts
    /// are materialized, so steady-state residency is the layouts alone.
    pub fn release_pages(&self) {
        if let Some(paged) = self.inner.paged.get() {
            paged.cache().release();
        }
    }

    /// Bytes held by this handle: the source form (if still resident) plus
    /// every materialized layout — the quantity the memory-footprint
    /// regression tests bound.  A row-range view owns none of its base's
    /// bytes, so an unmaterialized view reports 0.
    pub fn resident_bytes(&self) -> usize {
        let source = self
            .inner
            .source
            .read()
            .expect("source lock poisoned")
            .as_ref()
            .map_or(0, |coo| coo.size_bytes());
        source
            + self
                .inner
                .paged
                .get()
                .map_or(0, |p| p.cache().stats().resident_bytes)
            + self.inner.csr.get().map_or(0, |m| m.size_bytes())
            + self.inner.csc.get().map_or(0, |m| m.size_bytes())
            + self.inner.dense_rows.get().map_or(0, |m| m.size_bytes())
            + self
                .inner
                .dense
                .get()
                .map_or(0, |_| self.inner.shape.dense_len() * 8)
    }

    /// Whether two handles share the same underlying storage (layouts,
    /// source, page cache) — i.e. are clones of one matrix, not copies.
    ///
    /// The multi-tenant serving registry uses this to confirm that sessions
    /// admitted over the same dataset reuse one set of materialized layouts
    /// instead of duplicating them per session.
    pub fn shares_storage_with(&self, other: &DataMatrix) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Number of live handles (clones) onto this storage, including this
    /// one.  Diagnostic counterpart of
    /// [`DataMatrix::shares_storage_with`]: a server reports it per dataset
    /// so an operator can see layout reuse across admitted sessions.
    pub fn storage_handles(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Drop the canonical COO triplets once a compressed layout is resident,
    /// returning the bytes reclaimed (16 per stored triplet).
    ///
    /// The resident compressed layouts become the canonical form: anything
    /// still missing is converted from them, so every read keeps working.
    /// A no-op (returning 0) when no compressed layout exists yet, when the
    /// matrix never had a COO source, or when it was already compacted.
    /// Affects every clone of the handle — compaction is a property of the
    /// shared storage, not of one holder.
    pub fn compact_source(&self) -> usize {
        let layout_resident = self.inner.csr.get().is_some()
            || self.inner.csc.get().is_some()
            || self.inner.dense_rows.get().is_some();
        if !layout_resident {
            return 0;
        }
        let mut source = self.inner.source.write().expect("source lock poisoned");
        match source.take() {
            Some(coo) => coo.size_bytes(),
            None => 0,
        }
    }

    /// Spill the canonical COO source to a delete-on-drop page file under
    /// `dir` and continue serving it **out-of-core** through a page cache
    /// bounded to `cache_budget_bytes`, returning the resident bytes
    /// reclaimed (16 per stored triplet).
    ///
    /// Unlike [`DataMatrix::compact_source`], nothing needs to be
    /// materialized first: the pages *are* the canonical form afterwards,
    /// and any layout still missing materializes by streaming them.  A
    /// no-op (returning 0) for row-range views, already-paged matrices, and
    /// matrices without a COO source.  Affects every clone of the handle.
    pub fn spill_source_to(
        &self,
        dir: &Path,
        page_bytes: usize,
        cache_budget_bytes: usize,
    ) -> std::io::Result<usize> {
        if self.inner.paged.get().is_some() || self.inner.window.is_some() {
            return Ok(0);
        }
        let mut guard = self.inner.source.write().expect("source lock poisoned");
        let Some(coo) = guard.as_ref() else {
            return Ok(0);
        };
        std::fs::create_dir_all(dir)?;
        let path = dir.join(ooc::unique_spill_name("dw-spill"));
        // Page boundaries need monotone rows.  Generators emit row-ordered
        // triplets, so the common case streams the borrowed entries
        // directly; only an out-of-order source pays a stable sort by row
        // (which preserves within-row push order — the duplicate-merge
        // order) on a transient copy.
        let entries = coo.entries();
        let row_ordered = entries.windows(2).all(|w| w[0].row <= w[1].row);
        let sorted;
        let ordered: &[crate::Entry] = if row_ordered {
            entries
        } else {
            sorted = {
                let mut copy = entries.to_vec();
                copy.sort_by_key(|e| e.row);
                copy
            };
            &sorted
        };
        let mut writer =
            ooc::SpillWriter::create(&path, self.rows(), self.cols())?.with_page_bytes(page_bytes);
        for e in ordered {
            writer.push(e.row as usize, e.col as usize, e.value)?;
        }
        let source = writer.finish()?.delete_on_drop();
        let reclaimed = coo.size_bytes();
        let paged = PagedSource::new(Arc::new(source), cache_budget_bytes);
        if self.inner.paged.set(paged).is_err() {
            // Another holder spilled concurrently; keep theirs.
            return Ok(0);
        }
        *guard = None;
        Ok(reclaimed)
    }

    /// Value at `(row, col)` (zero if not stored).  Reads whichever layout
    /// is already resident; materializes CSR only as a last resort.
    ///
    /// # Panics
    /// On a range view, panics when `(row, col)` lies outside the window's
    /// shape — the translated read must never silently serve a neighboring
    /// base row/column the shard does not own.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if let Some(csr) = self.csr_if_materialized() {
            return csr.get(row, col);
        }
        if let Some(csc) = self.csc_if_materialized() {
            return csc.get(row, col);
        }
        if let Some(rows) = self.inner.dense_rows.get() {
            return rows.get(row, col);
        }
        if let Some(view) = &self.inner.window {
            let shape = self.inner.shape;
            assert!(
                row < shape.rows && col < shape.cols,
                "index ({row}, {col}) outside view of shape {}x{}",
                shape.rows,
                shape.cols
            );
            return match view.axis {
                Axis::Rows => view.base.get(view.start + row, col),
                Axis::Cols => view.base.get(row, view.start + col),
            };
        }
        self.csr().get(row, col)
    }

    /// An owned copy of the canonical COO source, when the matrix was built
    /// from one and the source has not been compacted away.  This clones
    /// the triplets — read-only consumers should use
    /// [`DataMatrix::with_coo_source`] (a borrow, no O(nnz) copy) and
    /// [`DataMatrix::has_coo_source`] for a presence check.
    pub fn coo_source(&self) -> Option<CooMatrix> {
        self.inner
            .source
            .read()
            .expect("source lock poisoned")
            .clone()
    }

    /// Run `f` against a **borrow** of the canonical COO source, without
    /// cloning the triplets; `None` when no COO source is resident (matrices
    /// built from a compressed layout or an out-of-core source, row-range
    /// views, and after compaction/spilling).  The read lock is held for the
    /// duration of `f`.
    pub fn with_coo_source<T>(&self, f: impl FnOnce(&CooMatrix) -> T) -> Option<T> {
        self.inner
            .source
            .read()
            .expect("source lock poisoned")
            .as_ref()
            .map(f)
    }

    /// Whether the canonical COO source is still resident (false for
    /// matrices built from a compressed layout, for row-range views, and
    /// after [`DataMatrix::compact_source`]).
    pub fn has_coo_source(&self) -> bool {
        self.inner
            .source
            .read()
            .expect("source lock poisoned")
            .is_some()
    }

    /// The row window this matrix views, when it is a zero-copy row shard.
    pub fn row_window(&self) -> Option<(usize, usize)> {
        match &self.inner.window {
            Some(v) if v.axis == Axis::Rows => Some((v.start, v.end)),
            _ => None,
        }
    }

    /// The column window this matrix views, when it is a zero-copy column
    /// shard.
    pub fn col_window(&self) -> Option<(usize, usize)> {
        match &self.inner.window {
            Some(v) if v.axis == Axis::Cols => Some((v.start, v.end)),
            _ => None,
        }
    }

    /// The base matrix a zero-copy column shard windows into (`None` for
    /// unwindowed matrices and row shards).  Column-to-row consumers read
    /// **full rows** through this — a column shard restricts only the
    /// column axis, never the row set `S(j)` expands into.
    pub fn col_window_base(&self) -> Option<&DataMatrix> {
        match &self.inner.window {
            Some(v) if v.axis == Axis::Cols => Some(&v.base),
            _ => None,
        }
    }

    /// The typed row view of a zero-copy row shard (`None` otherwise).
    pub fn as_row_range_view(&self) -> Option<RowRangeView> {
        match &self.inner.window {
            Some(v) if v.axis == Axis::Rows => Some(RowRangeView { view: v.clone() }),
            _ => None,
        }
    }

    /// The typed column view of a zero-copy column shard (`None` otherwise).
    pub fn as_col_range_view(&self) -> Option<ColRangeView> {
        match &self.inner.window {
            Some(v) if v.axis == Axis::Cols => Some(ColRangeView { view: v.clone() }),
            _ => None,
        }
    }

    /// Cut a **zero-copy** shard over the contiguous row range
    /// `start..end`: the shard shares the base's row layout through a
    /// [`RowRangeView`] and owns no element storage of its own.
    ///
    /// A row view of a row view flattens to a window over the root matrix,
    /// so chained sharding never stacks indirections.
    ///
    /// # Panics
    /// Panics unless `start <= end <= rows`.
    pub fn row_range(&self, start: usize, end: usize) -> DataMatrix {
        assert!(
            start <= end && end <= self.rows(),
            "row range {start}..{end} outside matrix of {} rows",
            self.rows()
        );
        let (base, offset) = match &self.inner.window {
            Some(view) if view.axis == Axis::Rows => (view.base.clone(), view.start),
            _ => (self.clone(), 0),
        };
        let cols = base.cols();
        Self::from_parts(
            Shape::new(end - start, cols),
            None,
            Some(AxisRangeView {
                base,
                axis: Axis::Rows,
                start: offset + start,
                end: offset + end,
            }),
        )
    }

    /// Cut a **zero-copy** shard over the contiguous column range
    /// `start..end` — the mirror of [`DataMatrix::row_range`] for the
    /// column-wise and column-to-row access methods: the shard shares the
    /// base's CSC through a [`ColRangeView`] and owns no element storage of
    /// its own.
    ///
    /// A column view of a column view flattens to a window over the root
    /// matrix, so chained sharding never stacks indirections.
    ///
    /// # Panics
    /// Panics unless `start <= end <= cols`.
    pub fn col_range(&self, start: usize, end: usize) -> DataMatrix {
        assert!(
            start <= end && end <= self.cols(),
            "column range {start}..{end} outside matrix of {} columns",
            self.cols()
        );
        let (base, offset) = match &self.inner.window {
            Some(view) if view.axis == Axis::Cols => (view.base.clone(), view.start),
            _ => (self.clone(), 0),
        };
        let rows = base.rows();
        Self::from_parts(
            Shape::new(rows, end - start),
            None,
            Some(AxisRangeView {
                base,
                axis: Axis::Cols,
                start: offset + start,
                end: offset + end,
            }),
        )
    }

    /// Cut a row shard as an owned copy (used where a shard must survive its
    /// base or carry reordered rows); prefer [`DataMatrix::row_range`] for
    /// contiguous shards, which is free.
    pub fn select_rows(&self, row_ids: &[usize]) -> DataMatrix {
        DataMatrix::from_csr(self.csr().select_rows(row_ids))
    }

    /// Byte extents of the already-resident row layouts backing rows
    /// `start..end` — what a zero-copy row shard physically reads, handed
    /// to the NUMA page binder at replica-set build time.
    ///
    /// Reads only layouts materialized *right now* (`OnceLock::get`, never
    /// `get_or_init`): asking for extents can never trigger a conversion or
    /// page in an out-of-core source.  A row-windowed matrix delegates to
    /// its base under the window's global offsets — the base's storage is
    /// what the shard serves.  Empty when no row layout is resident.
    ///
    /// # Panics
    /// Panics unless `start <= end <= rows`.
    pub fn row_range_extents(&self, start: usize, end: usize) -> Vec<ByteExtent> {
        assert!(
            start <= end && end <= self.rows(),
            "row range {start}..{end} outside matrix of {} rows",
            self.rows()
        );
        if let Some(view) = &self.inner.window {
            if view.axis == Axis::Rows && self.inner.csr.get().is_none() {
                return view
                    .base
                    .row_range_extents(view.start + start, view.start + end);
            }
        }
        let mut extents = Vec::new();
        if let Some(csr) = self.inner.csr.get() {
            extents.extend(csr.range_extents(start, end));
        }
        if let Some(rows) = self.inner.dense_rows.get() {
            extents.extend(rows.range_extents(start, end));
        }
        extents
    }

    /// The column mirror of [`DataMatrix::row_range_extents`]: byte extents
    /// of the already-resident CSC backing columns `start..end`.  Same
    /// contract — resident layouts only, window-delegating, possibly empty.
    ///
    /// # Panics
    /// Panics unless `start <= end <= cols`.
    pub fn col_range_extents(&self, start: usize, end: usize) -> Vec<ByteExtent> {
        assert!(
            start <= end && end <= self.cols(),
            "column range {start}..{end} outside matrix of {} columns",
            self.cols()
        );
        if let Some(view) = &self.inner.window {
            if view.axis == Axis::Cols && self.inner.csc.get().is_none() {
                return view
                    .base
                    .col_range_extents(view.start + start, view.start + end);
            }
        }
        let mut extents = Vec::new();
        if let Some(csc) = self.inner.csc.get() {
            extents.extend(csc.range_extents(start, end));
        }
        extents
    }
}

impl From<CooMatrix> for DataMatrix {
    fn from(coo: CooMatrix) -> Self {
        DataMatrix::from_coo(coo)
    }
}

impl From<CsrMatrix> for DataMatrix {
    fn from(csr: CsrMatrix) -> Self {
        DataMatrix::from_csr(csr)
    }
}

impl From<CscMatrix> for DataMatrix {
    fn from(csc: CscMatrix) -> Self {
        DataMatrix::from_csc(csc)
    }
}

impl RowAccess for DataMatrix {
    fn shape(&self) -> Shape {
        self.inner.shape
    }

    fn row(&self, i: usize) -> RowView<'_> {
        if self.inner.csr.get().is_none() {
            if let Some(rows) = self.inner.dense_rows.get() {
                return rows.row(i);
            }
            if let Some(view) = &self.inner.window {
                // Serve through the base's resident row backend — unless
                // the base is out-of-core with nothing resident, where the
                // window materializes its own page subrange instead of the
                // base's full layout.
                if view.axis == Axis::Rows && view.base.serves_window_rows() {
                    return view.row(i);
                }
            }
        }
        self.csr().row(i)
    }

    fn row_nnz(&self, i: usize) -> usize {
        if self.inner.csr.get().is_none() {
            if let Some(rows) = self.inner.dense_rows.get() {
                return rows.row_nnz(i);
            }
            if let Some(view) = &self.inner.window {
                if view.axis == Axis::Rows && view.base.serves_window_rows() {
                    return view.row_nnz(i);
                }
            }
        }
        self.csr().row_nnz(i)
    }
}

impl ColAccess for DataMatrix {
    fn shape(&self) -> Shape {
        self.inner.shape
    }

    fn col(&self, j: usize) -> ColView<'_> {
        if self.inner.csc.get().is_none() {
            if let Some(view) = &self.inner.window {
                // Serve through the base's shared CSC — unless the base is
                // out-of-core with nothing resident, where the window
                // materializes its own column subrange instead of the
                // base's full layout.
                if view.axis == Axis::Cols && view.base.serves_window_cols() {
                    return view.col(j);
                }
            }
        }
        self.csc().col(j)
    }

    fn col_nnz(&self, j: usize) -> usize {
        if self.inner.csc.get().is_none() {
            if let Some(view) = &self.inner.window {
                if view.axis == Axis::Cols && view.base.serves_window_cols() {
                    return view.col_nnz(j);
                }
            }
        }
        self.csc().col_nnz(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_coo() -> CooMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [0, 3, 4]]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(2, 1, 3.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        coo
    }

    #[test]
    fn clones_share_storage_and_count_their_handles() {
        let m = DataMatrix::from_coo(sample_coo());
        assert_eq!(m.storage_handles(), 1);
        let lease = m.clone();
        assert!(m.shares_storage_with(&lease));
        assert_eq!(m.storage_handles(), 2);
        // A layout materialized through one handle is visible through the
        // other — the reuse the serving registry asserts per dataset.
        lease.materialize_rows();
        assert!(m.csr_materialized());
        drop(lease);
        assert_eq!(m.storage_handles(), 1);
        // An independently built matrix shares nothing, even if equal.
        let other = DataMatrix::from_coo(sample_coo());
        assert!(!m.shares_storage_with(&other));
    }

    #[test]
    fn nothing_materialized_until_requested() {
        let m = DataMatrix::from_coo(sample_coo());
        assert!(!m.csr_materialized());
        assert!(!m.csc_materialized());
        assert!(!m.dense_materialized());
        // Stats never materialize a layout.
        assert_eq!(m.stats().nnz, 4);
        assert_eq!(m.nnz(), 4);
        assert!(!m.csr_materialized());
        assert!(!m.csc_materialized());
    }

    #[test]
    fn row_only_traffic_never_builds_columns() {
        let m = DataMatrix::from_coo(sample_coo());
        for i in 0..m.rows() {
            let _ = m.row(i);
        }
        assert!(m.csr_materialized());
        assert!(!m.csc_materialized(), "row traffic must not build CSC");
    }

    #[test]
    fn col_only_traffic_never_builds_rows() {
        let m = DataMatrix::from_coo(sample_coo());
        for j in 0..m.cols() {
            let _ = m.col(j);
        }
        assert!(m.csc_materialized());
        assert!(!m.csr_materialized(), "column traffic must not build CSR");
    }

    #[test]
    fn range_extents_cover_resident_layouts_only() {
        let m = DataMatrix::from_coo(sample_coo());
        // Nothing resident: extents are empty and nothing materializes.
        assert!(m.row_range_extents(0, m.rows()).is_empty());
        assert!(m.col_range_extents(0, m.cols()).is_empty());
        assert!(!m.csr_materialized());
        assert!(!m.csc_materialized());

        m.materialize_rows();
        let full = m.row_range_extents(0, m.rows());
        assert!(!full.is_empty());
        // A zero-copy shard's extents point into the base's live storage:
        // the shard's value bytes are a sub-range of the full extents.
        let shard = m.row_range(2, 3);
        let shard_extents = shard.row_range_extents(0, shard.rows());
        assert!(!shard_extents.is_empty());
        for e in &shard_extents {
            assert!(
                full.iter()
                    .any(|f| e.addr >= f.addr && e.addr + e.len <= f.addr + f.len),
                "shard extent {e:?} lies inside a base extent"
            );
        }
        // Column extents mirror through the CSC.
        m.materialize_cols();
        let cols = m.col_range_extents(1, 3);
        assert!(!cols.is_empty());
        assert!(cols.iter().all(|e| !e.is_empty()));
    }

    #[test]
    fn clones_share_layout_caches() {
        let a = DataMatrix::from_coo(sample_coo());
        let b = a.clone();
        b.materialize_rows();
        assert!(a.csr_materialized(), "clones share the same cache");
        assert_eq!(a.resident_bytes(), b.resident_bytes());
    }

    #[test]
    fn resident_bytes_grow_with_materialization() {
        let m = DataMatrix::from_coo(sample_coo());
        let source_only = m.resident_bytes();
        m.materialize_rows();
        let with_rows = m.resident_bytes();
        assert!(with_rows > source_only);
        m.materialize_cols();
        assert!(m.resident_bytes() > with_rows);
        let _ = m.dense();
        assert!(m.dense_materialized());
        assert!(m.resident_bytes() > with_rows);
    }

    #[test]
    fn csr_and_csc_sources_prefill_their_layout() {
        let csr = sample_coo().to_csr();
        let m = DataMatrix::from_csr(csr.clone());
        assert!(m.csr_materialized());
        assert!(!m.csc_materialized());
        assert_eq!(m.csr(), &csr);

        let csc = sample_coo().to_csc();
        let m = DataMatrix::from_csc(csc.clone());
        assert!(m.csc_materialized());
        assert!(!m.csr_materialized());
        assert_eq!(m.csc(), &csc);
        assert_eq!(m.csr(), &csc.to_csr());
        assert_eq!(m.stats().nnz, 4);
    }

    #[test]
    fn get_reads_any_resident_layout() {
        let m = DataMatrix::from_coo(sample_coo());
        m.materialize_cols();
        assert_eq!(m.get(2, 1), 3.0);
        assert!(!m.csr_materialized(), "get prefers the resident layout");
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn compact_source_reclaims_coo_bytes_once_a_layout_exists() {
        let m = DataMatrix::from_coo(sample_coo());
        // Nothing materialized yet: compaction must refuse (the triplets are
        // the only copy of the data).
        assert_eq!(m.compact_source(), 0);
        assert_eq!(m.stats().nnz, 4);

        m.materialize_rows();
        let before = m.resident_bytes();
        let reclaimed = m.compact_source();
        assert_eq!(reclaimed, 16 * 4, "16 bytes per stored triplet");
        assert_eq!(m.resident_bytes(), before - reclaimed);
        assert_eq!(m.resident_bytes(), m.csr().size_bytes());
        assert!(!m.has_coo_source());
        // Second compaction is a no-op.
        assert_eq!(m.compact_source(), 0);
        // Every read keeps working; the missing layouts convert from CSR.
        assert_eq!(m.get(2, 1), 3.0);
        assert_eq!(m.csc().get(0, 2), 2.0);
        assert_eq!(m.dense().get(2, 2), 4.0);
    }

    #[test]
    fn compact_source_is_shared_across_clones() {
        let a = DataMatrix::from_coo(sample_coo());
        let b = a.clone();
        a.materialize_rows();
        assert!(b.compact_source() > 0);
        assert!(!a.has_coo_source(), "compaction is storage-wide");
        assert_eq!(a.compact_source(), 0);
    }

    #[test]
    fn compacted_matrix_recomputes_stats_from_layouts() {
        let m = DataMatrix::from_coo(sample_coo());
        m.materialize_cols();
        m.compact_source();
        // Stats were never computed before compaction: they now come from
        // the resident CSC.
        assert_eq!(m.stats().nnz, 4);
        assert_eq!(m.stats(), &MatrixStats::from_csr(&sample_coo().to_csr()));
    }

    #[test]
    fn row_range_view_is_zero_copy_and_bit_identical() {
        let m = DataMatrix::from_coo(sample_coo());
        m.materialize_rows();
        let shard = m.row_range(1, 3);
        assert_eq!(shard.rows(), 2);
        assert_eq!(shard.row_window(), Some((1, 3)));
        // Zero-copy: the shard owns no element storage.
        assert_eq!(shard.resident_bytes(), 0);
        assert!(shard.csr_materialized(), "served by the base's layout");
        assert!(!shard.csc_materialized());
        // Bit-identical row bytes: the view serves the base's exact slices.
        for i in 0..2 {
            let a = shard.row(i);
            let b = m.row(1 + i);
            assert!(std::ptr::eq(a.indices, b.indices), "row {i} shares storage");
            assert!(std::ptr::eq(a.values, b.values), "row {i} shares storage");
        }
        assert_eq!(shard.get(0, 1), 0.0);
        assert_eq!(shard.get(1, 1), 3.0);
        assert_eq!(shard.stats().nnz, 2);
    }

    #[test]
    fn row_range_of_a_view_flattens_to_the_root() {
        let m = DataMatrix::from_coo(sample_coo());
        let outer = m.row_range(1, 3);
        let nested = outer.row_range(1, 2);
        assert_eq!(nested.row_window(), Some((2, 3)));
        assert_eq!(nested.rows(), 1);
        assert_eq!(nested.get(0, 2), 4.0);
    }

    #[test]
    fn row_range_materializes_base_rows_not_a_copy() {
        let m = DataMatrix::from_coo(sample_coo());
        let shard = m.row_range(0, 2);
        assert!(!m.csr_materialized());
        shard.materialize_rows();
        assert!(m.csr_materialized(), "the shared layout was built");
        assert_eq!(shard.resident_bytes(), 0, "the shard still owns nothing");
        // Forcing an owned layout out of the view still works (escape hatch).
        assert_eq!(shard.csr().rows(), 2);
        assert!(shard.resident_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "outside matrix")]
    fn row_range_bounds_checked() {
        let m = DataMatrix::from_coo(sample_coo());
        let _ = m.row_range(1, 4);
    }

    #[test]
    fn col_range_view_is_zero_copy_and_bit_identical() {
        let m = DataMatrix::from_coo(sample_coo());
        m.materialize_cols();
        let shard = m.col_range(1, 3);
        assert_eq!(shard.cols(), 2);
        assert_eq!(shard.rows(), 3, "a column window keeps every row");
        assert_eq!(shard.col_window(), Some((1, 3)));
        assert_eq!(shard.row_window(), None);
        // Zero-copy: the shard owns no element storage.
        assert_eq!(shard.resident_bytes(), 0);
        assert!(shard.csc_materialized(), "served by the base's CSC");
        assert!(!shard.csr_materialized());
        // Bit-identical column bytes: the view serves the base's exact
        // slices, row ids global.
        for j in 0..2 {
            let a = shard.col(j);
            let b = m.col(1 + j);
            assert!(std::ptr::eq(a.indices, b.indices), "col {j} shares storage");
            assert!(std::ptr::eq(a.values, b.values), "col {j} shares storage");
        }
        assert_eq!(shard.get(2, 0), 3.0);
        assert_eq!(shard.get(0, 1), 2.0);
        assert_eq!(shard.stats().nnz, 3);
        // The typed view surface agrees with the matrix handle.
        let view = shard.as_col_range_view().expect("column shard");
        assert_eq!(view.start(), 1);
        assert_eq!(view.end(), 3);
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
        assert_eq!(view.shape(), Shape::new(3, 2));
        assert_eq!(view.col_nnz(1), m.col_nnz(2));
        assert!(shard.as_row_range_view().is_none());
    }

    #[test]
    fn col_range_of_a_view_flattens_to_the_root() {
        let m = DataMatrix::from_coo(sample_coo());
        let outer = m.col_range(1, 3);
        let nested = outer.col_range(1, 2);
        assert_eq!(nested.col_window(), Some((2, 3)));
        assert_eq!(nested.cols(), 1);
        assert_eq!(nested.get(2, 0), 4.0);
        assert!(
            nested
                .as_col_range_view()
                .unwrap()
                .base()
                .col_window()
                .is_none(),
            "the nested view windows the root, not the outer view"
        );
    }

    #[test]
    fn col_range_materializes_base_cols_not_a_copy() {
        let m = DataMatrix::from_coo(sample_coo());
        let shard = m.col_range(0, 2);
        assert!(!m.csc_materialized());
        shard.materialize_cols();
        assert!(m.csc_materialized(), "the shared CSC was built");
        assert_eq!(shard.resident_bytes(), 0, "the shard still owns nothing");
        assert!(!m.csr_materialized(), "column shards never touch the CSR");
        // Forcing an owned layout out of the view still works (escape hatch).
        assert_eq!(shard.csc().cols(), 2);
        assert!(shard.resident_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "outside matrix")]
    fn col_range_bounds_checked() {
        let m = DataMatrix::from_coo(sample_coo());
        let _ = m.col_range(2, 4);
    }

    #[test]
    fn window_of_a_paged_base_materializes_only_its_column_subrange() {
        let coo = sample_coo();
        let m = paged_copy(&coo, 16, 64);
        let shard = m.col_range(1, 3);
        shard.materialize_cols();
        assert!(!m.csc_materialized(), "the base's full CSC was never built");
        // The shard's own CSC equals the in-memory column window.
        let expected = coo.to_csc().select_range(1, 3);
        for j in 0..2 {
            let a = shard.col(j);
            let b = expected.col(j);
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.values, b.values);
        }
        assert_eq!(shard.stats().nnz, expected.nnz());
        assert!(shard.resident_bytes() > 0, "the shard owns its subrange");
    }

    #[test]
    fn select_rows_shard_is_row_only() {
        let m = DataMatrix::from_coo(sample_coo());
        let shard = m.select_rows(&[2, 0]);
        assert_eq!(shard.rows(), 2);
        assert!(shard.csr_materialized());
        assert!(!shard.csc_materialized());
        assert_eq!(shard.get(0, 1), 3.0);
        assert_eq!(shard.get(1, 0), 1.0);
    }

    fn paged_copy(coo: &CooMatrix, page_bytes: usize, budget: usize) -> DataMatrix {
        DataMatrix::from_source(
            Arc::new(crate::ooc::InMemorySource::from_coo(coo, page_bytes)),
            budget,
        )
    }

    #[test]
    fn paged_source_materializes_layouts_bit_identically() {
        let coo = sample_coo();
        let m = paged_copy(&coo, 16, 64);
        assert!(m.is_paged());
        assert!(!m.has_coo_source());
        // Stats stream from the pages and match the in-memory route.
        assert_eq!(m.stats(), &MatrixStats::from_coo(&coo));
        assert_eq!(m.csr(), &coo.to_csr());
        assert_eq!(m.csc(), &coo.to_csc());
        assert_eq!(m.dense(), &coo.to_dense(Layout::RowMajor));
        let stats = m.ooc_stats().expect("paged matrix has cache stats");
        assert!(stats.faults > 0, "layouts streamed through the cache");
        m.release_pages();
        assert_eq!(m.ooc_stats().unwrap().resident_bytes, 0);
    }

    #[test]
    fn paged_csc_streams_without_building_csr() {
        let coo = sample_coo();
        let m = paged_copy(&coo, 16, 64);
        let _ = m.csc();
        assert!(m.csc_materialized());
        assert!(
            !m.csr_materialized(),
            "column traffic on a paged source must not build CSR"
        );
    }

    #[test]
    fn spill_source_to_swaps_coo_for_pages_in_place() {
        let coo = sample_coo();
        let m = DataMatrix::from_coo(coo.clone());
        let dir = crate::ooc::TempSpillDir::new("dw-dm-test").unwrap();
        let reclaimed = m.spill_source_to(dir.path(), 32, 64).unwrap();
        assert_eq!(reclaimed, coo.size_bytes());
        assert!(m.is_paged());
        assert!(!m.has_coo_source());
        // Second spill is a no-op; clones share the paged source.
        assert_eq!(m.spill_source_to(dir.path(), 32, 64).unwrap(), 0);
        assert_eq!(m.clone().spill_source_to(dir.path(), 32, 64).unwrap(), 0);
        // Every read keeps working, bit-identically.
        assert_eq!(m.csr(), &coo.to_csr());
        assert_eq!(m.csc(), &coo.to_csc());
        assert_eq!(m.stats(), &MatrixStats::from_coo(&coo));
    }

    #[test]
    fn window_of_a_paged_base_materializes_only_its_page_subrange() {
        let coo = sample_coo();
        let m = paged_copy(&coo, 16, 64);
        let shard = m.row_range(1, 3);
        shard.materialize_rows();
        assert!(
            !m.csr_materialized(),
            "the base's full layout was never built"
        );
        // The shard's own CSR equals the in-memory window.
        let expected = coo.to_csr().select_range(1, 3);
        for i in 0..2 {
            let a = shard.row(i);
            let b = expected.row(i);
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.values, b.values);
        }
        assert_eq!(shard.stats().nnz, expected.nnz());
        assert!(shard.resident_bytes() > 0, "the shard owns its subrange");
    }

    #[test]
    fn dense_rows_serve_row_views_without_sparse_layouts() {
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                coo.push(i, j, (i * 3 + j + 1) as f64).unwrap();
            }
        }
        let m = DataMatrix::from_coo(coo.clone());
        m.materialize_dense_rows();
        assert!(m.dense_rows_materialized());
        assert!(!m.csr_materialized());
        let csr = coo.to_csr();
        for i in 0..3 {
            let a = m.row(i);
            let b = csr.row(i);
            assert_eq!(a.indices, b.indices, "row {i}");
            assert_eq!(a.values, b.values, "row {i}");
        }
        assert!(!m.csr_materialized(), "rows served by the dense store");
        assert_eq!(m.get(1, 2), 6.0);
        // A zero-copy window over a dense-rows base serves through it too.
        let shard = m.row_range(1, 3);
        assert_eq!(shard.row(0).values, csr.row(1).values);
        assert!(!m.csr_materialized());
        // materialize_row_access is a no-op when dense rows are resident.
        m.materialize_row_access();
        assert!(!m.csr_materialized());
        // Compaction accepts the dense store as the retained layout.
        assert!(m.compact_source() > 0);
        assert_eq!(
            m.csr(),
            &csr,
            "sourceless fallback rebuilds from dense rows"
        );
    }

    #[test]
    fn with_coo_source_borrows_without_cloning() {
        let m = DataMatrix::from_coo(sample_coo());
        let nnz = m.with_coo_source(|coo| coo.nnz());
        assert_eq!(nnz, Some(4));
        m.materialize_rows();
        m.compact_source();
        assert_eq!(m.with_coo_source(|coo| coo.nnz()), None);
    }

    proptest! {
        #[test]
        fn prop_paged_matrix_matches_in_memory_layouts(
            entries in proptest::collection::vec((0usize..10, 0usize..6, -4.0f64..4.0), 0..50),
            page_entries in 1usize..8,
            budget_pages in 1usize..4,
        ) {
            let mut coo = CooMatrix::new(10, 6);
            for (r, c, v) in entries {
                let v = if v < -3.5 { 0.0 } else { v };
                coo.push(r, c, v).unwrap();
            }
            let page_bytes = page_entries * 16;
            // A cache budget smaller than the source: layouts still
            // materialize bit-identically by streaming.
            let m = paged_copy(&coo, page_bytes, budget_pages * page_bytes);
            prop_assert_eq!(m.stats(), &MatrixStats::from_coo(&coo));
            prop_assert_eq!(m.csr(), &coo.to_csr());
            prop_assert_eq!(m.csc(), &coo.to_csc());
        }

        #[test]
        fn prop_dense_rows_match_csr_row_views_on_dense_data(
            rows in 1usize..6,
            cols in 1usize..6,
            seed in 0u64..500,
        ) {
            let mut coo = CooMatrix::new(rows, cols);
            for i in 0..rows {
                for j in 0..cols {
                    let v = ((i * cols + j) as u64 * 2654435761 + seed) % 997;
                    coo.push(i, j, v as f64 / 31.0 + 0.25).unwrap();
                }
            }
            let dense = DataMatrix::from_coo(coo.clone());
            dense.materialize_dense_rows();
            let sparse = DataMatrix::from_coo(coo);
            sparse.materialize_rows();
            for i in 0..rows {
                let a = dense.row(i);
                let b = sparse.row(i);
                prop_assert_eq!(a.indices, b.indices);
                prop_assert_eq!(a.values, b.values);
            }
            prop_assert!(!dense.csr_materialized());
        }

        #[test]
        fn prop_views_match_concrete_layouts(
            entries in proptest::collection::btree_map((0usize..8, 0usize..6), -4.0f64..4.0, 0..30)
        ) {
            let mut coo = CooMatrix::new(8, 6);
            for (&(r, c), &v) in &entries {
                coo.push(r, c, v).unwrap();
            }
            let reference = coo.to_csr();
            let m = DataMatrix::from_coo(coo);
            // Row views match the standalone CSR bit for bit.
            for i in 0..m.rows() {
                let a = m.row(i);
                let b = reference.row(i);
                prop_assert_eq!(a.indices, b.indices);
                prop_assert_eq!(a.values, b.values);
            }
            // Column views match the standalone CSC bit for bit.
            let reference_csc = reference.to_csc();
            for j in 0..m.cols() {
                let a = m.col(j);
                let b = reference_csc.col(j);
                prop_assert_eq!(a.indices, b.indices);
                prop_assert_eq!(a.values, b.values);
            }
            // Stats computed lazily agree with the CSR-derived stats.
            prop_assert_eq!(m.stats(), &MatrixStats::from_csr(&reference));
        }

        #[test]
        fn prop_row_range_views_serve_base_rows(
            entries in proptest::collection::btree_map((0usize..10, 0usize..5), -4.0f64..4.0, 0..40),
            start in 0usize..10,
            len in 0usize..10,
        ) {
            let mut coo = CooMatrix::new(10, 5);
            for (&(r, c), &v) in &entries {
                coo.push(r, c, v).unwrap();
            }
            let m = DataMatrix::from_coo(coo);
            let end = (start + len).min(10);
            let shard = m.row_range(start, end);
            prop_assert_eq!(shard.resident_bytes(), 0);
            for i in 0..shard.rows() {
                let a = shard.row(i);
                let b = m.row(start + i);
                prop_assert_eq!(a.indices, b.indices);
                prop_assert_eq!(a.values, b.values);
            }
            // An owned copy of the window agrees with the view.
            let owned = shard.csr().clone();
            for i in 0..shard.rows() {
                prop_assert_eq!(owned.row(i).indices, m.row(start + i).indices);
            }
        }

        #[test]
        fn prop_col_range_views_serve_base_cols(
            entries in proptest::collection::btree_map((0usize..10, 0usize..5), -4.0f64..4.0, 0..40),
            start in 0usize..5,
            len in 0usize..5,
        ) {
            let mut coo = CooMatrix::new(10, 5);
            for (&(r, c), &v) in &entries {
                coo.push(r, c, v).unwrap();
            }
            let m = DataMatrix::from_coo(coo);
            let end = (start + len).min(5);
            let shard = m.col_range(start, end);
            prop_assert_eq!(shard.resident_bytes(), 0);
            for j in 0..shard.cols() {
                let a = shard.col(j);
                let b = m.col(start + j);
                prop_assert_eq!(a.indices, b.indices);
                prop_assert_eq!(a.values, b.values);
                prop_assert_eq!(shard.col_nnz(j), m.col_nnz(start + j));
            }
            // An owned copy of the window agrees with the view — and with
            // the base CSC's contiguous column slice.
            let owned = shard.csc().clone();
            let reference = m.csc().select_range(start, end);
            prop_assert_eq!(&owned, &reference);
            // A nested view flattens to the root and keeps serving the
            // root's exact slices.
            if shard.cols() > 1 {
                let nested = shard.col_range(1, shard.cols());
                for j in 0..nested.cols() {
                    prop_assert_eq!(nested.col(j).indices, m.col(start + 1 + j).indices);
                    prop_assert_eq!(nested.col(j).values, m.col(start + 1 + j).values);
                }
            }
        }

        #[test]
        fn prop_col_range_views_over_a_paged_base_match_the_resident_route(
            entries in proptest::collection::btree_map((0usize..10, 0usize..6), -4.0f64..4.0, 0..40),
            start in 0usize..6,
            len in 0usize..6,
            page_entries in 1usize..8,
        ) {
            let mut coo = CooMatrix::new(10, 6);
            for (&(r, c), &v) in &entries {
                coo.push(r, c, v).unwrap();
            }
            let end = (start + len).min(6);
            let page_bytes = page_entries * 16;
            let paged = paged_copy(&coo, page_bytes, 2 * page_bytes);
            let shard = paged.col_range(start, end);
            // The window materializes only its column subrange, streamed
            // through the bounded cache — bit-identical to the in-memory
            // window of the full CSC.
            let reference = coo.to_csc().select_range(start, end);
            prop_assert_eq!(shard.csc(), &reference);
            prop_assert!(!paged.csc_materialized());
            prop_assert_eq!(shard.stats().nnz, reference.nnz());
        }

        #[test]
        fn prop_roundtrip_through_every_layout_preserves_values(
            entries in proptest::collection::btree_map((0usize..6, 0usize..6), -9.0f64..9.0, 0..24)
        ) {
            let mut coo = CooMatrix::new(6, 6);
            for (&(r, c), &v) in &entries {
                coo.push(r, c, v).unwrap();
            }
            let m = DataMatrix::from_coo(coo.clone());
            let dense = m.dense();
            let csr = m.csr();
            let csc = m.csc();
            for i in 0..6 {
                for j in 0..6 {
                    let expected = coo.to_dense(Layout::RowMajor).get(i, j);
                    prop_assert_eq!(csr.get(i, j), expected);
                    prop_assert_eq!(csc.get(i, j), expected);
                    prop_assert_eq!(dense.get(i, j), expected);
                }
            }
        }

        #[test]
        fn prop_compaction_preserves_every_read(
            entries in proptest::collection::btree_map((0usize..6, 0usize..6), -9.0f64..9.0, 0..24)
        ) {
            let mut coo = CooMatrix::new(6, 6);
            for (&(r, c), &v) in &entries {
                coo.push(r, c, v).unwrap();
            }
            let m = DataMatrix::from_coo(coo.clone());
            m.materialize_rows();
            m.compact_source();
            let reference = coo.to_csr();
            for i in 0..6 {
                for j in 0..6 {
                    prop_assert_eq!(m.get(i, j), reference.get(i, j));
                }
            }
            prop_assert_eq!(m.csc(), &reference.to_csc());
        }
    }
}
