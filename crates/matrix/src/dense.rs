//! Dense matrix storage in row-major or column-major layout.
//!
//! Appendix A of the paper shows that storing the data in the layout that
//! matches the access method matters: a row-wise access over a column-major
//! matrix incurs ~9× more L1 misses.  [`DenseMatrix`] therefore carries its
//! [`Layout`] explicitly, and the engine converts the matrix to the layout
//! that matches the chosen access method before execution.

use crate::storage::{ByteExtent, F64Section};
use crate::views::RowAccess;
use crate::{MatrixError, RowView, Shape};

/// Physical layout of a dense matrix buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Layout {
    /// Consecutive elements of a row are adjacent in memory.
    RowMajor,
    /// Consecutive elements of a column are adjacent in memory.
    ColMajor,
}

/// A dense `N×d` matrix of `f64` values.
///
/// The value buffer lives in [`Section`](crate::storage::Section) storage so
/// a persisted layout file can serve it in place; writes through [`set`]
/// detach from the file copy-on-write.
///
/// [`set`]: DenseMatrix::set
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    shape: Shape,
    layout: Layout,
    data: F64Section,
}

impl DenseMatrix {
    /// Create a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize, layout: Layout) -> Self {
        DenseMatrix {
            shape: Shape::new(rows, cols),
            layout,
            data: vec![0.0; rows * cols].into(),
        }
    }

    /// Build a matrix over an already-backed storage section (the reopen
    /// path of `persist.rs`).
    pub(crate) fn from_section(
        rows: usize,
        cols: usize,
        layout: Layout,
        data: F64Section,
    ) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::ShapeMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(DenseMatrix {
            shape: Shape::new(rows, cols),
            layout,
            data,
        })
    }

    /// Create a matrix from a buffer in the given layout.
    pub fn from_vec(
        rows: usize,
        cols: usize,
        layout: Layout,
        data: Vec<f64>,
    ) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::ShapeMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(DenseMatrix {
            shape: Shape::new(rows, cols),
            layout,
            data: data.into(),
        })
    }

    /// Build a row-major matrix from a slice of rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MatrixError> {
        let n = rows.len();
        let d = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n * d);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != d {
                return Err(MatrixError::InconsistentStructure(format!(
                    "row {i} has {} columns, expected {d}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            shape: Shape::new(n, d),
            layout: Layout::RowMajor,
            data: data.into(),
        })
    }

    /// Shape of the matrix.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.shape.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.shape.cols
    }

    /// Current layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Raw data buffer in the current layout.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Number of bytes occupied by the value buffer.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Read element `(row, col)` regardless of layout.
    ///
    /// # Panics
    /// Panics if the indices are out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.shape.rows && col < self.shape.cols);
        match self.layout {
            Layout::RowMajor => self.data[row * self.shape.cols + col],
            Layout::ColMajor => self.data[col * self.shape.rows + row],
        }
    }

    /// Write element `(row, col)` regardless of layout.
    ///
    /// # Panics
    /// Panics if the indices are out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.shape.rows && col < self.shape.cols);
        let idx = match self.layout {
            Layout::RowMajor => row * self.shape.cols + col,
            Layout::ColMajor => col * self.shape.rows + row,
        };
        self.data.to_mut()[idx] = value;
    }

    /// Whether the value buffer is served from a mapped layout file.
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// A contiguous view of row `i`; only available in row-major layout.
    pub fn row(&self, i: usize) -> Option<&[f64]> {
        if self.layout == Layout::RowMajor && i < self.shape.rows {
            let d = self.shape.cols;
            Some(&self.data[i * d..(i + 1) * d])
        } else {
            None
        }
    }

    /// A contiguous view of column `j`; only available in column-major layout.
    pub fn col(&self, j: usize) -> Option<&[f64]> {
        if self.layout == Layout::ColMajor && j < self.shape.cols {
            let n = self.shape.rows;
            Some(&self.data[j * n..(j + 1) * n])
        } else {
            None
        }
    }

    /// Copy row `i` into a freshly-allocated vector, in any layout.
    pub fn row_to_vec(&self, i: usize) -> Vec<f64> {
        (0..self.shape.cols).map(|j| self.get(i, j)).collect()
    }

    /// Copy column `j` into a freshly-allocated vector, in any layout.
    pub fn col_to_vec(&self, j: usize) -> Vec<f64> {
        (0..self.shape.rows).map(|i| self.get(i, j)).collect()
    }

    /// Return a copy of this matrix in the requested layout.
    ///
    /// The engine uses this to store data consistently with the access
    /// method, per Appendix A ("Row-major and Column-major Storage").
    pub fn to_layout(&self, layout: Layout) -> DenseMatrix {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = DenseMatrix::zeros(self.shape.rows, self.shape.cols, layout);
        for i in 0..self.shape.rows {
            for j in 0..self.shape.cols {
                out.set(i, j, self.get(i, j));
            }
        }
        out
    }

    /// Dense matrix-vector product `A * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.shape.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.shape.rows];
        match self.layout {
            Layout::RowMajor => {
                for (i, yi) in y.iter_mut().enumerate() {
                    *yi = crate::vector::dot_dense(self.row(i).expect("row-major row"), x);
                }
            }
            Layout::ColMajor => {
                for (j, &xj) in x.iter().enumerate() {
                    let col = self.col(j).expect("col-major col");
                    for (yi, &aij) in y.iter_mut().zip(col) {
                        *yi += aij * xj;
                    }
                }
            }
        }
        y
    }
}

/// Row-major dense storage served through the sparse [`RowAccess`] trait.
///
/// Music/Forest-shaped fully dense matrices pay 12 bytes per element through
/// the compressed layouts (8-byte value + 4-byte column index).  `DenseRows`
/// stores the values row-major at 8 bytes per element and serves every row's
/// index slice from **one shared** `0..d` arange, so the per-element index
/// overhead drops from `4·N·d` bytes to `4·d` total while the row views —
/// and therefore the kernels, the update order, and the convergence traces —
/// stay bit-identical to the CSR views of a fully dense matrix.
///
/// This is the storage behind the planner's `Dense` layout arm; consumers
/// keep programming against [`RowAccess`] and never see the backend change.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseRows {
    shape: Shape,
    /// Row-major values, `shape.rows * shape.cols` long.
    values: F64Section,
    /// The shared column arange `0..cols`, served as every row's indices.
    /// Always rebuilt locally — never persisted, it is pure function of
    /// `cols`.
    indices: Vec<u32>,
}

impl DenseRows {
    /// A zero-filled dense row store.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(cols <= u32::MAX as usize, "columns must fit u32 indices");
        DenseRows {
            shape: Shape::new(rows, cols),
            values: vec![0.0; rows * cols].into(),
            indices: (0..cols as u32).collect(),
        }
    }

    /// Build a row store over an already-backed storage section (the reopen
    /// path of `persist.rs`); the shared index arange is rebuilt in place.
    pub(crate) fn from_section(
        rows: usize,
        cols: usize,
        values: F64Section,
    ) -> Result<Self, MatrixError> {
        assert!(cols <= u32::MAX as usize, "columns must fit u32 indices");
        if values.len() != rows * cols {
            return Err(MatrixError::ShapeMismatch {
                expected: rows * cols,
                got: values.len(),
            });
        }
        Ok(DenseRows {
            shape: Shape::new(rows, cols),
            values,
            indices: (0..cols as u32).collect(),
        })
    }

    /// Whether the value buffer is served from a mapped layout file.
    pub fn is_mapped(&self) -> bool {
        self.values.is_mapped()
    }

    /// Shape of the matrix.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.shape.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.shape.cols
    }

    /// Value at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.shape.rows && col < self.shape.cols);
        self.values[row * self.shape.cols + col]
    }

    /// Write `(row, col)` (used by the builders in `DataMatrix`).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.shape.rows && col < self.shape.cols);
        self.values.to_mut()[row * self.shape.cols + col] = value;
    }

    /// Add to `(row, col)` (COO accumulation semantics).
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.shape.rows && col < self.shape.cols);
        self.values.to_mut()[row * self.shape.cols + col] += value;
    }

    /// The row-major value buffer.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Byte extents of the value storage backing rows `start..end` — the
    /// dense-layout counterpart of [`CsrMatrix::range_extents`], consumed
    /// by the NUMA page binder.  (The shared index arange is deliberately
    /// excluded: every group reads it, so it has no owner node.)
    ///
    /// [`CsrMatrix::range_extents`]: crate::CsrMatrix::range_extents
    ///
    /// # Panics
    /// Panics unless `start <= end <= rows`.
    pub fn range_extents(&self, start: usize, end: usize) -> Vec<ByteExtent> {
        assert!(
            start <= end && end <= self.shape.rows,
            "row range {start}..{end} outside matrix of {} rows",
            self.shape.rows
        );
        let d = self.shape.cols;
        let window = &self.values[start * d..end * d];
        if window.is_empty() {
            Vec::new()
        } else {
            vec![ByteExtent::of_slice(window)]
        }
    }

    /// Bytes held: the value buffer plus the one shared index arange.
    pub fn size_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
            + self.indices.len() * std::mem::size_of::<u32>()
    }
}

impl RowAccess for DenseRows {
    fn shape(&self) -> Shape {
        self.shape
    }

    #[inline]
    fn row(&self, i: usize) -> RowView<'_> {
        assert!(i < self.shape.rows, "row {i} out of range");
        let d = self.shape.cols;
        RowView {
            indices: &self.indices,
            values: &self.values[i * d..(i + 1) * d],
        }
    }

    fn row_nnz(&self, i: usize) -> usize {
        assert!(i < self.shape.rows, "row {i} out of range");
        self.shape.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn from_rows_and_get() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1).unwrap(), &[4.0, 5.0, 6.0]);
        assert!(m.col(0).is_none());
        assert_eq!(m.size_bytes(), 48);
    }

    #[test]
    fn from_rows_ragged_rejected() {
        let err = DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, MatrixError::InconsistentStructure(_)));
    }

    #[test]
    fn from_vec_shape_mismatch() {
        let err = DenseMatrix::from_vec(2, 2, Layout::RowMajor, vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            MatrixError::ShapeMismatch {
                expected: 4,
                got: 3
            }
        );
    }

    #[test]
    fn layout_conversion_preserves_elements() {
        let m = sample();
        let c = m.to_layout(Layout::ColMajor);
        assert_eq!(c.layout(), Layout::ColMajor);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), c.get(i, j));
            }
        }
        assert_eq!(c.col(1).unwrap(), &[2.0, 5.0]);
        assert!(c.row(0).is_none());
        assert_eq!(c.row_to_vec(0), vec![1.0, 2.0, 3.0]);
        // Converting to the same layout is a clone.
        assert_eq!(m.to_layout(Layout::RowMajor), m);
    }

    #[test]
    fn matvec_row_and_col_major_agree() {
        let m = sample();
        let x = vec![1.0, -1.0, 2.0];
        let yr = m.matvec(&x);
        let yc = m.to_layout(Layout::ColMajor).matvec(&x);
        assert_eq!(yr, vec![5.0, 11.0]);
        assert_eq!(yr, yc);
    }

    #[test]
    fn set_and_col_to_vec() {
        let mut m = DenseMatrix::zeros(2, 2, Layout::ColMajor);
        m.set(0, 1, 7.0);
        assert_eq!(m.get(0, 1), 7.0);
        assert_eq!(m.col_to_vec(1), vec![7.0, 0.0]);
    }

    #[test]
    fn dense_rows_serve_shared_arange_views() {
        let mut m = DenseRows::zeros(3, 4);
        for i in 0..3 {
            for j in 0..4 {
                m.set(i, j, (i * 4 + j) as f64);
            }
        }
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(2, 1), 9.0);
        m.add(2, 1, 0.5);
        assert_eq!(m.get(2, 1), 9.5);
        let a = m.row(0);
        let b = m.row(2);
        assert_eq!(a.indices, &[0, 1, 2, 3]);
        assert!(
            std::ptr::eq(a.indices, b.indices),
            "every row shares one index arange"
        );
        assert_eq!(b.values, &[8.0, 9.5, 10.0, 11.0]);
        assert_eq!(m.row_nnz(1), 4);
        // 8 bytes per element plus the single 4-byte-per-column arange.
        assert_eq!(m.size_bytes(), 3 * 4 * 8 + 4 * 4);
    }

    #[test]
    fn dense_rows_match_csr_views_of_a_fully_dense_matrix() {
        // The bit-parity contract behind the Dense layout arm.
        let mut coo = crate::CooMatrix::new(3, 3);
        let mut dense = DenseRows::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                let v = (i as f64 + 1.0) / (j as f64 + 2.0);
                coo.push(i, j, v).unwrap();
                dense.set(i, j, v);
            }
        }
        let csr = coo.to_csr();
        for i in 0..3 {
            let a = dense.row(i);
            let b = csr.row(i);
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.values, b.values);
        }
    }

    proptest! {
        #[test]
        fn prop_layout_roundtrip(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
            let data: Vec<f64> = (0..rows * cols)
                .map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f64 / 10.0)
                .collect();
            let m = DenseMatrix::from_vec(rows, cols, Layout::RowMajor, data).unwrap();
            let back = m.to_layout(Layout::ColMajor).to_layout(Layout::RowMajor);
            prop_assert_eq!(m, back);
        }

        #[test]
        fn prop_matvec_layout_invariant(rows in 1usize..6, cols in 1usize..6) {
            let data: Vec<f64> = (0..rows * cols).map(|i| i as f64 * 0.5 - 3.0).collect();
            let m = DenseMatrix::from_vec(rows, cols, Layout::RowMajor, data).unwrap();
            let x: Vec<f64> = (0..cols).map(|i| i as f64 - 1.0).collect();
            let yr = m.matvec(&x);
            let yc = m.to_layout(Layout::ColMajor).matvec(&x);
            for (a, b) in yr.iter().zip(&yc) {
                prop_assert!((a - b).abs() < 1e-10);
            }
        }
    }
}
