//! Shared blocked kernels for sparse slice arithmetic.
//!
//! Before the unified storage layer, `CsrMatrix::row(..).dot(..)` and
//! `CscMatrix::col(..).dot(..)` each carried their own copy of the same
//! gather-multiply-accumulate loop.  Every access method in the engine
//! bottoms out in these few operations, so they live here once and are
//! shared by both orientations through [`crate::views::VecView`].
//!
//! Two kernel families live here, selected per plan by
//! [`KernelVariant`]:
//!
//! * **Reference** — blocked (manually unrolled in chunks of four) but with
//!   a **single accumulator** applied strictly in index order.  Multi-
//!   accumulator reductions reassociate the floating-point sum, and the
//!   engine's determinism contract requires that storage- and kernel-layer
//!   changes leave every convergence trace bit-identical; the single
//!   accumulator reproduces the exact rounding sequence of the original
//!   per-layout loops.  This is the trace-parity anchor and the default.
//! * **Wide** — 4 or 8 *independent* accumulator lanes with a sequential
//!   lane reduction at the end.  The independent chains break the serial
//!   add-latency dependency (and give the auto-vectorizer straight-line
//!   blocks), trading bit-parity with Reference for throughput.  The loop
//!   is still fully deterministic: the same plan over the same data
//!   produces the same trace, pinned by hash in the benches.
//!
//! The index stream feeding a kernel may be raw `u32`s or the
//! block-compressed encoding of [`crate::encoding::BlockedIndices`]; the
//! `*_encoded` entry points consume the compressed stream directly so
//! decode never materializes an index array.

use crate::encoding::EncodedChunk;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which accumulate-loop family a plan executes.
///
/// `Reference` is the single-accumulator, strictly-in-index-order loop —
/// the trace-parity anchor every bit-identity test is pinned against.
/// `Wide` runs `lanes` independent accumulator chains (4 or 8; other
/// values are normalized to the nearest supported width) and is
/// deterministic per plan: the lane count fixes the association, so the
/// same plan always reproduces the same rounding sequence.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize, Hash,
)]
pub enum KernelVariant {
    /// Single accumulator, bit-identical to a scalar in-order loop.
    #[default]
    Reference,
    /// `lanes` independent accumulator chains, reduced sequentially.
    Wide {
        /// Number of independent accumulators (normalized to 4 or 8).
        lanes: u8,
    },
}

impl KernelVariant {
    /// The supported lane count this variant executes with: 1 for
    /// `Reference`; 8 for `Wide` with 8 or more requested lanes, else 4.
    #[inline]
    pub fn lanes(self) -> usize {
        match self {
            KernelVariant::Reference => 1,
            KernelVariant::Wide { lanes } => {
                if lanes >= 8 {
                    8
                } else {
                    4
                }
            }
        }
    }

    /// Stable lowercase label (used in plan descriptions and bench names).
    pub fn name(self) -> &'static str {
        match self.lanes() {
            8 => "wide8",
            4 => "wide4",
            _ => "reference",
        }
    }
}

impl std::fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a sparse layout's index stream is stored and fed to the kernels.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize, Hash,
)]
pub enum IndexEncoding {
    /// Raw `u32` index arrays (4 bytes per stored element).
    #[default]
    U32,
    /// Block-compressed frame-of-reference encoding: per-block `u32` base
    /// plus `u16` offsets (~2 bytes per stored element), with a raw-`u32`
    /// fallback block wherever an offset overflows `u16`
    /// ([`crate::encoding::BlockedIndices`]).
    DeltaU16,
}

impl IndexEncoding {
    /// Stable lowercase label (used in plan descriptions and bench names).
    pub fn name(self) -> &'static str {
        match self {
            IndexEncoding::U32 => "u32",
            IndexEncoding::DeltaU16 => "delta16",
        }
    }
}

impl std::fmt::Display for IndexEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A lock-free cell holding the kernel decision a plan is executing with.
///
/// Shared (`Arc`) between a task and every shard cut from it, so a
/// `Session::replan` flips the variant/encoding for all workers at an epoch
/// boundary without touching the shards or re-materializing a layout.
/// Epoch execution is quiescent when the session writes it, so `Relaxed`
/// ordering suffices — the cell is a plan register, not a synchronization
/// point.
#[derive(Debug, Default)]
pub struct KernelSelector {
    variant: AtomicU8,
    encoding: AtomicU8,
}

impl KernelSelector {
    /// A selector starting at the defaults (`Reference`, `U32`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a new kernel decision.
    pub fn set(&self, variant: KernelVariant, encoding: IndexEncoding) {
        let v = match variant {
            KernelVariant::Reference => 0,
            KernelVariant::Wide { .. } => variant.lanes() as u8,
        };
        self.variant.store(v, Ordering::Relaxed);
        self.encoding.store(
            matches!(encoding, IndexEncoding::DeltaU16) as u8,
            Ordering::Relaxed,
        );
    }

    /// The variant currently selected.
    pub fn variant(&self) -> KernelVariant {
        match self.variant.load(Ordering::Relaxed) {
            0 => KernelVariant::Reference,
            lanes => KernelVariant::Wide { lanes },
        }
    }

    /// The index encoding currently selected.
    pub fn encoding(&self) -> IndexEncoding {
        if self.encoding.load(Ordering::Relaxed) == 0 {
            IndexEncoding::U32
        } else {
            IndexEncoding::DeltaU16
        }
    }
}

#[cold]
#[inline(never)]
fn misaligned(indices: usize, values: usize) -> ! {
    panic!("index/value arrays must be aligned: {indices} indices vs {values} values");
}

#[inline]
fn check_aligned(indices: &[u32], values: &[f64]) {
    if indices.len() != values.len() {
        misaligned(indices.len(), values.len());
    }
}

/// Gathered dot product: `Σ_k values[k] * dense[indices[k]]`.
///
/// This is the **reference** sparse·dense dot implementation in the
/// workspace — single accumulator, strictly in index order, bit-identical
/// to a scalar loop; row views, column views and the epoch kernels all call
/// it unless a plan selects a wide variant.
///
/// # Panics
/// Panics (in every build profile, via slice indexing) if any index is out
/// of bounds for `dense`, or if `indices` and `values` differ in length
/// (the message reports both lengths).
#[inline]
pub fn dot_indexed(indices: &[u32], values: &[f64], dense: &[f64]) -> f64 {
    check_aligned(indices, values);
    let mut acc = 0.0;
    let chunks = indices.len() / 4;
    for c in 0..chunks {
        let base = c * 4;
        // Single accumulator, strictly in index order: bit-identical to the
        // scalar loop (see module docs).
        acc += values[base] * dense[indices[base] as usize];
        acc += values[base + 1] * dense[indices[base + 1] as usize];
        acc += values[base + 2] * dense[indices[base + 2] as usize];
        acc += values[base + 3] * dense[indices[base + 3] as usize];
    }
    for k in chunks * 4..indices.len() {
        acc += values[k] * dense[indices[k] as usize];
    }
    acc
}

/// The multi-accumulator gather loop behind [`dot_indexed_wide`],
/// monomorphized per lane count so the blocks are straight-line code.
/// Alignment is the caller's responsibility (both public entry points
/// check it once).
#[inline]
fn dot_indexed_lanes<const LANES: usize>(indices: &[u32], values: &[f64], dense: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    // `chunks_exact` fixes both slice lengths at LANES, so the only
    // bounds check left in the block is the `dense` gather itself — that
    // is what makes this loop faster than the reference even on short
    // slices, on top of the independent accumulator chains.
    let index_blocks = indices.chunks_exact(LANES);
    let value_blocks = values.chunks_exact(LANES);
    let index_tail = index_blocks.remainder();
    let value_tail = value_blocks.remainder();
    for (ib, vb) in index_blocks.zip(value_blocks) {
        for k in 0..LANES {
            acc[k] += vb[k] * dense[ib[k] as usize];
        }
    }
    // Sequential lane reduction: the association is fixed by LANES, which
    // is what makes the wide variant deterministic per plan.
    let mut total = 0.0;
    for lane in acc {
        total += lane;
    }
    for (&i, &v) in index_tail.iter().zip(value_tail.iter()) {
        total += v * dense[i as usize];
    }
    total
}

/// Gathered dot product with `lanes` (4 or 8) independent accumulator
/// chains — the throughput variant of [`dot_indexed`].  Deterministic for a
/// fixed lane count, but **not** bit-identical to the reference kernel: the
/// lanes reassociate the sum.
///
/// # Panics
/// Panics if any index is out of bounds for `dense`, or if `indices` and
/// `values` differ in length (the message reports both lengths).
#[inline]
pub fn dot_indexed_wide(indices: &[u32], values: &[f64], dense: &[f64], lanes: u8) -> f64 {
    check_aligned(indices, values);
    if lanes >= 8 {
        dot_indexed_lanes::<8>(indices, values, dense)
    } else {
        dot_indexed_lanes::<4>(indices, values, dense)
    }
}

/// Gathered dot product through a plan's [`KernelVariant`].
#[inline]
pub fn dot_indexed_with(
    variant: KernelVariant,
    indices: &[u32],
    values: &[f64],
    dense: &[f64],
) -> f64 {
    match variant {
        KernelVariant::Reference => dot_indexed(indices, values, dense),
        KernelVariant::Wide { lanes } => dot_indexed_wide(indices, values, dense, lanes),
    }
}

/// Gathered axpy: `y[indices[k]] += alpha * values[k]` for every stored
/// component.
///
/// # Aligned-length contract
/// `indices` and `values` must have the same length — the arrays are the
/// two halves of one sparse slice.  The contract is asserted in every
/// build profile and the message reports both lengths.
///
/// # Panics
/// Panics if any index is out of bounds for `y`, or if `indices` and
/// `values` differ in length.
#[inline]
pub fn axpy_indexed(alpha: f64, indices: &[u32], values: &[f64], y: &mut [f64]) {
    check_aligned(indices, values);
    for (&i, &v) in indices.iter().zip(values.iter()) {
        y[i as usize] += alpha * v;
    }
}

/// Explicitly unrolled gathered axpy — the wide sibling of
/// [`axpy_indexed`].  The scattered writes have no cross-iteration
/// accumulation, and the unrolled blocks apply updates in source order, so
/// this is **bit-identical** to the reference loop (duplicate indices
/// included) while exposing independent address streams to the scheduler.
///
/// # Panics
/// Panics if any index is out of bounds for `y`, or if `indices` and
/// `values` differ in length (the message reports both lengths).
#[inline]
pub fn axpy_indexed_wide(alpha: f64, indices: &[u32], values: &[f64], y: &mut [f64], lanes: u8) {
    check_aligned(indices, values);
    let width = if lanes >= 8 { 8 } else { 4 };
    let index_blocks = indices.chunks_exact(width);
    let value_blocks = values.chunks_exact(width);
    let index_tail = index_blocks.remainder();
    let value_tail = value_blocks.remainder();
    for (ib, vb) in index_blocks.zip(value_blocks) {
        for k in 0..width {
            y[ib[k] as usize] += alpha * vb[k];
        }
    }
    for (&i, &v) in index_tail.iter().zip(value_tail.iter()) {
        y[i as usize] += alpha * v;
    }
}

/// Gathered axpy through a plan's [`KernelVariant`].
#[inline]
pub fn axpy_indexed_with(
    variant: KernelVariant,
    alpha: f64,
    indices: &[u32],
    values: &[f64],
    y: &mut [f64],
) {
    match variant {
        KernelVariant::Reference => axpy_indexed(alpha, indices, values, y),
        KernelVariant::Wide { lanes } => axpy_indexed_wide(alpha, indices, values, y, lanes),
    }
}

/// Dense dot product of two equal-length slices: the one multi-accumulator
/// dense loop in the workspace (4 independent lanes, sequential lane
/// reduction, sequential tail), shared by [`crate::vector::dot_dense`] and
/// the dense row store.
///
/// Alignment is the caller's responsibility — `vector::dot_dense` asserts
/// equal lengths with its historical message before delegating here.
#[inline]
pub fn dot_dense_unrolled(a: &[f64], b: &[f64]) -> f64 {
    let mut acc0 = 0.0;
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    let mut acc3 = 0.0;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        acc0 += a[base] * b[base];
        acc1 += a[base + 1] * b[base + 1];
        acc2 += a[base + 2] * b[base + 2];
        acc3 += a[base + 3] * b[base + 3];
    }
    let mut acc = acc0 + acc1 + acc2 + acc3;
    for i in chunks * 4..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Sum of squares of a value slice (used by SCD step normalization).
#[inline]
pub fn sum_of_squares(values: &[f64]) -> f64 {
    let mut acc = 0.0;
    let chunks = values.len() / 4;
    for c in 0..chunks {
        let base = c * 4;
        acc += values[base] * values[base];
        acc += values[base + 1] * values[base + 1];
        acc += values[base + 2] * values[base + 2];
        acc += values[base + 3] * values[base + 3];
    }
    for v in &values[chunks * 4..] {
        acc += v * v;
    }
    acc
}

/// Reference gathered dot over a block-compressed index stream: single
/// accumulator, strictly in stream order — **bit-identical** to
/// [`dot_indexed`] over the decoded indices, so switching a plan's
/// encoding never perturbs a Reference-path convergence trace.
///
/// `values` runs in lockstep with the concatenated chunks.
///
/// # Panics
/// Panics if the chunks decode to more elements than `values` holds, or if
/// any decoded index is out of bounds for `dense`.
pub fn dot_encoded<'a>(
    chunks: impl Iterator<Item = EncodedChunk<'a>>,
    values: &[f64],
    dense: &[f64],
) -> f64 {
    let mut acc = 0.0;
    let mut at = 0;
    for chunk in chunks {
        match chunk {
            EncodedChunk::Delta { base, offsets } => {
                let vals = &values[at..at + offsets.len()];
                for (o, v) in offsets.iter().zip(vals) {
                    acc += v * dense[base as usize + *o as usize];
                }
                at += offsets.len();
            }
            EncodedChunk::Raw(indices) => {
                let vals = &values[at..at + indices.len()];
                for (i, v) in indices.iter().zip(vals) {
                    acc += v * dense[*i as usize];
                }
                at += indices.len();
            }
        }
    }
    acc
}

/// The wide accumulate loop over one delta block.
#[inline]
fn dot_delta_lanes<const LANES: usize>(
    base: u32,
    offsets: &[u16],
    values: &[f64],
    dense: &[f64],
) -> f64 {
    let mut acc = [0.0f64; LANES];
    // Same shape as `dot_indexed_lanes`: `chunks_exact` leaves the `dense`
    // gather as the only bounds check inside the block.
    let offset_blocks = offsets.chunks_exact(LANES);
    let value_blocks = values.chunks_exact(LANES);
    let offset_tail = offset_blocks.remainder();
    let value_tail = value_blocks.remainder();
    for (ob, vb) in offset_blocks.zip(value_blocks) {
        for k in 0..LANES {
            acc[k] += vb[k] * dense[base as usize + ob[k] as usize];
        }
    }
    let mut total = 0.0;
    for lane in acc {
        total += lane;
    }
    for (&o, &v) in offset_tail.iter().zip(value_tail.iter()) {
        total += v * dense[base as usize + o as usize];
    }
    total
}

/// Wide gathered dot over a block-compressed index stream: each chunk runs
/// the multi-accumulator loop and contributes its own partial sum, in
/// stream order.  Deterministic for a fixed lane count and encoding (the
/// block geometry fixes the association), but not bit-identical to the
/// raw-index wide kernel.
pub fn dot_encoded_wide<'a>(
    chunks: impl Iterator<Item = EncodedChunk<'a>>,
    values: &[f64],
    dense: &[f64],
    lanes: u8,
) -> f64 {
    let mut acc = 0.0;
    let mut at = 0;
    for chunk in chunks {
        match chunk {
            EncodedChunk::Delta { base, offsets } => {
                let vals = &values[at..at + offsets.len()];
                acc += if lanes >= 8 {
                    dot_delta_lanes::<8>(base, offsets, vals, dense)
                } else {
                    dot_delta_lanes::<4>(base, offsets, vals, dense)
                };
                at += offsets.len();
            }
            EncodedChunk::Raw(indices) => {
                let vals = &values[at..at + indices.len()];
                acc += if lanes >= 8 {
                    dot_indexed_lanes::<8>(indices, vals, dense)
                } else {
                    dot_indexed_lanes::<4>(indices, vals, dense)
                };
                at += indices.len();
            }
        }
    }
    acc
}

/// Gathered dot over a block-compressed index stream through a plan's
/// [`KernelVariant`].
pub fn dot_encoded_with<'a>(
    variant: KernelVariant,
    chunks: impl Iterator<Item = EncodedChunk<'a>>,
    values: &[f64],
    dense: &[f64],
) -> f64 {
    match variant {
        KernelVariant::Reference => dot_encoded(chunks, values, dense),
        KernelVariant::Wide { lanes } => dot_encoded_wide(chunks, values, dense, lanes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::BlockedIndices;
    use proptest::prelude::*;

    #[test]
    fn dot_indexed_matches_naive() {
        let indices: Vec<u32> = vec![0, 3, 4, 7, 9, 11, 12];
        let values: Vec<f64> = (0..7).map(|i| i as f64 * 0.7 - 2.0).collect();
        let dense: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let naive: f64 = indices
            .iter()
            .zip(&values)
            .map(|(&i, &v)| v * dense[i as usize])
            .sum();
        assert_eq!(dot_indexed(&indices, &values, &dense), naive);
    }

    #[test]
    fn dot_indexed_is_bitwise_sequential() {
        // The kernel must reproduce the exact rounding sequence of a scalar
        // in-order loop — the engine's trace-parity contract depends on it.
        let indices: Vec<u32> = (0..37).map(|i| i * 3).collect();
        let values: Vec<f64> = (0..37).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let dense: Vec<f64> = (0..128).map(|i| (i as f64 * 0.37).cos()).collect();
        let mut sequential = 0.0;
        for (&i, &v) in indices.iter().zip(&values) {
            sequential += v * dense[i as usize];
        }
        assert_eq!(
            dot_indexed(&indices, &values, &dense).to_bits(),
            sequential.to_bits()
        );
    }

    #[test]
    fn axpy_indexed_updates_targets() {
        let mut y = vec![1.0; 5];
        axpy_indexed(2.0, &[1, 4], &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![1.0, 7.0, 1.0, 1.0, -1.0]);
    }

    #[test]
    fn axpy_wide_is_bitwise_identical_to_reference() {
        // Scattered writes in source order: the unrolled variant must be
        // exactly the reference loop, duplicate-free or not.
        let indices: Vec<u32> = (0..23).map(|i| (i * 5) % 17).collect();
        let values: Vec<f64> = (0..23).map(|i| (i as f64 * 0.3).sin()).collect();
        for lanes in [4u8, 8] {
            let mut a = vec![0.25; 17];
            let mut b = a.clone();
            axpy_indexed(1.7, &indices, &values, &mut a);
            axpy_indexed_wide(1.7, &indices, &values, &mut b, lanes);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn sum_of_squares_matches_naive() {
        let values: Vec<f64> = (0..11).map(|i| i as f64 - 4.5).collect();
        let naive: f64 = values.iter().map(|v| v * v).sum();
        assert_eq!(sum_of_squares(&values), naive);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mismatched_arrays_rejected() {
        let _ = dot_indexed(&[0, 1], &[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "2 indices vs 1 values")]
    fn mismatched_arrays_report_both_lengths() {
        let _ = dot_indexed(&[0, 1], &[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn axpy_mismatched_arrays_rejected() {
        axpy_indexed(1.0, &[0, 1], &[1.0], &mut [1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn wide_mismatched_arrays_rejected() {
        let _ = dot_indexed_wide(&[0, 1], &[1.0], &[1.0, 2.0], 4);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_index_panics() {
        let _ = dot_indexed(&[5], &[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn variant_normalizes_lanes() {
        assert_eq!(KernelVariant::Reference.lanes(), 1);
        assert_eq!(KernelVariant::Wide { lanes: 0 }.lanes(), 4);
        assert_eq!(KernelVariant::Wide { lanes: 4 }.lanes(), 4);
        assert_eq!(KernelVariant::Wide { lanes: 6 }.lanes(), 4);
        assert_eq!(KernelVariant::Wide { lanes: 8 }.lanes(), 8);
        assert_eq!(KernelVariant::Wide { lanes: 255 }.lanes(), 8);
        assert_eq!(KernelVariant::Wide { lanes: 8 }.name(), "wide8");
        assert_eq!(KernelVariant::default().name(), "reference");
    }

    #[test]
    fn selector_round_trips_decisions() {
        let cell = KernelSelector::new();
        assert_eq!(cell.variant(), KernelVariant::Reference);
        assert_eq!(cell.encoding(), IndexEncoding::U32);
        cell.set(KernelVariant::Wide { lanes: 8 }, IndexEncoding::DeltaU16);
        assert_eq!(cell.variant(), KernelVariant::Wide { lanes: 8 });
        assert_eq!(cell.encoding(), IndexEncoding::DeltaU16);
        cell.set(KernelVariant::Reference, IndexEncoding::U32);
        assert_eq!(cell.variant(), KernelVariant::Reference);
        assert_eq!(cell.encoding(), IndexEncoding::U32);
    }

    #[test]
    fn encoded_reference_is_bitwise_identical_to_raw() {
        let indices: Vec<u32> = (0..300).map(|i| i * 7 % 1000).collect();
        let values: Vec<f64> = (0..300).map(|i| (i as f64 * 0.11).cos()).collect();
        let dense: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.03).sin()).collect();
        let encoded = BlockedIndices::encode(&indices);
        let raw = dot_indexed(&indices, &values, &dense);
        let enc = dot_encoded(encoded.chunks_in_range(0, indices.len()), &values, &dense);
        assert_eq!(raw.to_bits(), enc.to_bits());
    }

    proptest! {
        #[test]
        fn prop_dot_indexed_matches_sequential(
            pairs in proptest::collection::btree_map(0u32..64, -10.0f64..10.0, 0..48),
        ) {
            let indices: Vec<u32> = pairs.keys().copied().collect();
            let values: Vec<f64> = pairs.values().copied().collect();
            let dense: Vec<f64> = (0..64).map(|i| (i as f64) * 0.31 - 7.0).collect();
            let mut sequential = 0.0;
            for (&i, &v) in indices.iter().zip(&values) {
                sequential += v * dense[i as usize];
            }
            prop_assert_eq!(
                dot_indexed(&indices, &values, &dense).to_bits(),
                sequential.to_bits()
            );
        }

        #[test]
        fn prop_wide_matches_reference_within_tolerance(
            pairs in proptest::collection::btree_map(0u32..256, -10.0f64..10.0, 0..160),
            // Any requested width normalizes to a supported lane count.
            lanes in 1u8..12,
        ) {
            let indices: Vec<u32> = pairs.keys().copied().collect();
            let values: Vec<f64> = pairs.values().copied().collect();
            let dense: Vec<f64> = (0..256).map(|i| (i as f64) * 0.17 - 11.0).collect();
            let reference = dot_indexed(&indices, &values, &dense);
            let wide = dot_indexed_wide(&indices, &values, &dense, lanes);
            let scale: f64 = indices
                .iter()
                .zip(&values)
                .map(|(&i, &v)| (v * dense[i as usize]).abs())
                .sum::<f64>()
                .max(1.0);
            prop_assert!((reference - wide).abs() <= 1e-12 * scale);
        }

        #[test]
        fn prop_wide_is_deterministic(
            pairs in proptest::collection::btree_map(0u32..256, -10.0f64..10.0, 0..160),
            // Any requested width normalizes to a supported lane count.
            lanes in 1u8..12,
        ) {
            let indices: Vec<u32> = pairs.keys().copied().collect();
            let values: Vec<f64> = pairs.values().copied().collect();
            let dense: Vec<f64> = (0..256).map(|i| (i as f64) * 0.23 - 3.0).collect();
            let first = dot_indexed_wide(&indices, &values, &dense, lanes);
            let second = dot_indexed_wide(&indices, &values, &dense, lanes);
            prop_assert_eq!(first.to_bits(), second.to_bits());
            let encoded = BlockedIndices::encode(&indices);
            let enc_first =
                dot_encoded_wide(encoded.chunks_in_range(0, indices.len()), &values, &dense, lanes);
            let enc_second =
                dot_encoded_wide(encoded.chunks_in_range(0, indices.len()), &values, &dense, lanes);
            prop_assert_eq!(enc_first.to_bits(), enc_second.to_bits());
        }

        #[test]
        fn prop_encoded_reference_bitwise_matches_raw(
            pairs in proptest::collection::btree_map(0u32..100_000, -10.0f64..10.0, 0..300),
        ) {
            let indices: Vec<u32> = pairs.keys().copied().collect();
            let values: Vec<f64> = pairs.values().copied().collect();
            let dense: Vec<f64> = (0..100_000).map(|i| ((i % 97) as f64) * 0.21 - 9.0).collect();
            let encoded = BlockedIndices::encode(&indices);
            let raw = dot_indexed(&indices, &values, &dense);
            let enc = dot_encoded(encoded.chunks_in_range(0, indices.len()), &values, &dense);
            prop_assert_eq!(raw.to_bits(), enc.to_bits());
        }
    }
}
