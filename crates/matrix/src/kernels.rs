//! Shared blocked kernels for sparse slice arithmetic.
//!
//! Before the unified storage layer, `CsrMatrix::row(..).dot(..)` and
//! `CscMatrix::col(..).dot(..)` each carried their own copy of the same
//! gather-multiply-accumulate loop.  Every access method in the engine
//! bottoms out in these few operations, so they live here once and are
//! shared by both orientations through [`crate::views::VecView`].
//!
//! The loops are *blocked* (manually unrolled in chunks of four) but use a
//! **single accumulator**: multi-accumulator reductions reassociate the
//! floating-point sum, and the engine's determinism contract requires that a
//! storage-layer refactor leave every convergence trace bit-identical.  A
//! single accumulator applied in index order reproduces the exact rounding
//! sequence of the original per-layout loops while still giving the
//! optimizer straight-line blocks to schedule.

/// Gathered dot product: `Σ_k values[k] * dense[indices[k]]`.
///
/// This is the one sparse·dense dot implementation in the workspace; row
/// views, column views and the epoch kernels all call it.
///
/// # Panics
/// Panics (in every build profile, via slice indexing) if any index is out
/// of bounds for `dense`, or if `indices` and `values` differ in length.
#[inline]
pub fn dot_indexed(indices: &[u32], values: &[f64], dense: &[f64]) -> f64 {
    assert_eq!(
        indices.len(),
        values.len(),
        "index/value arrays must be aligned"
    );
    let mut acc = 0.0;
    let chunks = indices.len() / 4;
    for c in 0..chunks {
        let base = c * 4;
        // Single accumulator, strictly in index order: bit-identical to the
        // scalar loop (see module docs).
        acc += values[base] * dense[indices[base] as usize];
        acc += values[base + 1] * dense[indices[base + 1] as usize];
        acc += values[base + 2] * dense[indices[base + 2] as usize];
        acc += values[base + 3] * dense[indices[base + 3] as usize];
    }
    for k in chunks * 4..indices.len() {
        acc += values[k] * dense[indices[k] as usize];
    }
    acc
}

/// Gathered axpy: `y[indices[k]] += alpha * values[k]` for every stored
/// component.
///
/// # Panics
/// Panics if any index is out of bounds for `y`, or if `indices` and
/// `values` differ in length.
#[inline]
pub fn axpy_indexed(alpha: f64, indices: &[u32], values: &[f64], y: &mut [f64]) {
    assert_eq!(
        indices.len(),
        values.len(),
        "index/value arrays must be aligned"
    );
    for (&i, &v) in indices.iter().zip(values.iter()) {
        y[i as usize] += alpha * v;
    }
}

/// Sum of squares of a value slice (used by SCD step normalization).
#[inline]
pub fn sum_of_squares(values: &[f64]) -> f64 {
    let mut acc = 0.0;
    let chunks = values.len() / 4;
    for c in 0..chunks {
        let base = c * 4;
        acc += values[base] * values[base];
        acc += values[base + 1] * values[base + 1];
        acc += values[base + 2] * values[base + 2];
        acc += values[base + 3] * values[base + 3];
    }
    for v in &values[chunks * 4..] {
        acc += v * v;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_indexed_matches_naive() {
        let indices: Vec<u32> = vec![0, 3, 4, 7, 9, 11, 12];
        let values: Vec<f64> = (0..7).map(|i| i as f64 * 0.7 - 2.0).collect();
        let dense: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let naive: f64 = indices
            .iter()
            .zip(&values)
            .map(|(&i, &v)| v * dense[i as usize])
            .sum();
        assert_eq!(dot_indexed(&indices, &values, &dense), naive);
    }

    #[test]
    fn dot_indexed_is_bitwise_sequential() {
        // The kernel must reproduce the exact rounding sequence of a scalar
        // in-order loop — the engine's trace-parity contract depends on it.
        let indices: Vec<u32> = (0..37).map(|i| i * 3).collect();
        let values: Vec<f64> = (0..37).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let dense: Vec<f64> = (0..128).map(|i| (i as f64 * 0.37).cos()).collect();
        let mut sequential = 0.0;
        for (&i, &v) in indices.iter().zip(&values) {
            sequential += v * dense[i as usize];
        }
        assert_eq!(
            dot_indexed(&indices, &values, &dense).to_bits(),
            sequential.to_bits()
        );
    }

    #[test]
    fn axpy_indexed_updates_targets() {
        let mut y = vec![1.0; 5];
        axpy_indexed(2.0, &[1, 4], &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![1.0, 7.0, 1.0, 1.0, -1.0]);
    }

    #[test]
    fn sum_of_squares_matches_naive() {
        let values: Vec<f64> = (0..11).map(|i| i as f64 - 4.5).collect();
        let naive: f64 = values.iter().map(|v| v * v).sum();
        assert_eq!(sum_of_squares(&values), naive);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mismatched_arrays_rejected() {
        let _ = dot_indexed(&[0, 1], &[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_index_panics() {
        let _ = dot_indexed(&[5], &[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn prop_dot_indexed_matches_sequential(
            pairs in proptest::collection::btree_map(0u32..64, -10.0f64..10.0, 0..48),
        ) {
            let indices: Vec<u32> = pairs.keys().copied().collect();
            let values: Vec<f64> = pairs.values().copied().collect();
            let dense: Vec<f64> = (0..64).map(|i| (i as f64) * 0.31 - 7.0).collect();
            let mut sequential = 0.0;
            for (&i, &v) in indices.iter().zip(&values) {
                sequential += v * dense[i as usize];
            }
            prop_assert_eq!(
                dot_indexed(&indices, &values, &dense).to_bits(),
                sequential.to_bits()
            );
        }
    }
}
