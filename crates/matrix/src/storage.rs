//! Backing storage for materialized layout arrays.
//!
//! The compressed layouts historically owned their arrays as plain `Vec`s.
//! Persistent layouts (`persist.rs`) want to serve the same arrays straight
//! out of an on-disk file instead — zero-copy when the `mmap` feature maps
//! the file, and still zero-*extra*-copy in the buffered fallback, where all
//! sections of a file alias one read-once buffer.  [`Section`] is the small
//! abstraction that makes both spellings look like a `&[T]`:
//!
//! * `Owned` — a `Vec<T>`, exactly what the in-memory materialization path
//!   produces.
//! * `Mapped` — an element range inside a shared [`MappedFile`], reinterpreted
//!   in place.  Only constructed when the bytes are little-endian (the disk
//!   format) and properly aligned for `T`; otherwise the constructor falls
//!   back to decoding into an owned vector, so a `Section` is always safe to
//!   deref.
//!
//! Mutation goes through [`Section::to_mut`], which converts a mapped section
//! to an owned one on first write (copy-on-write) — the handful of in-place
//! builders (`DenseMatrix::set`, `DenseRows::add`) keep working unchanged on
//! re-opened layouts.

use std::fmt;
use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// Marker for element types that may be reinterpreted from raw little-endian
/// file bytes.
///
/// # Safety
/// Implementors must be plain-old-data: no padding, no invalid bit patterns,
/// and a stable little-endian byte encoding written by `persist.rs`.
pub unsafe trait Pod: Copy + PartialEq + fmt::Debug + 'static {
    /// Decode one element from its little-endian byte encoding.
    fn from_le_bytes(bytes: &[u8]) -> Self;
}

unsafe impl Pod for u32 {
    fn from_le_bytes(bytes: &[u8]) -> Self {
        u32::from_le_bytes(bytes.try_into().expect("4-byte u32"))
    }
}

unsafe impl Pod for f64 {
    fn from_le_bytes(bytes: &[u8]) -> Self {
        f64::from_le_bytes(bytes.try_into().expect("8-byte f64"))
    }
}

/// A contiguous byte range of a live allocation — what layout buffers hand
/// to the NUMA page binder.
///
/// An extent is just `(address, length)`: it borrows nothing, so the caller
/// must only use it while the storage that produced it is alive (the binder
/// consumes extents immediately at replica-set build time).  Works over
/// owned and mapped sections alike — both serve their elements from stable
/// addresses for the section's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteExtent {
    /// Address of the first byte.
    pub addr: usize,
    /// Length in bytes.
    pub len: usize,
}

impl ByteExtent {
    /// The extent covering `slice`'s elements.
    pub fn of_slice<T>(slice: &[T]) -> ByteExtent {
        ByteExtent {
            addr: slice.as_ptr() as usize,
            len: std::mem::size_of_val(slice),
        }
    }

    /// Whether the extent covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// ---------------------------------------------------------------------------
// MappedFile: a read-only file image, mmap'd when the feature allows it.
// ---------------------------------------------------------------------------

/// True when the build can use the raw `mmap(2)` backend.
#[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    // Declared directly against the platform libc (the toolchain links it
    // unconditionally); no external crate needed.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub fn map_failed(ptr: *mut c_void) -> bool {
        ptr as isize == -1
    }
}

enum FileImage {
    /// The whole file read into one 8-byte-aligned buffer (stored as `u64`
    /// words so reinterpreting any section as `u32`/`f64` stays aligned).
    Buffered { words: Vec<u64>, len: usize },
    /// A live `mmap(2)` of the file; unmapped on drop.
    #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
    Mapped { ptr: *const u8, len: usize },
}

/// A shared, immutable image of an on-disk layout file.
///
/// With the `mmap` feature on a 64-bit unix target this is a real
/// memory-mapping — pages fault in on first touch and the OS page cache is
/// the eviction layer, so persisted layouts can exceed DRAM.  Everywhere
/// else it degrades to reading the file once into an aligned buffer.
pub struct MappedFile {
    image: FileImage,
}

// SAFETY: the image is immutable after construction; a raw mapping is
// read-only (PROT_READ) and never aliased mutably.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Open `path` as a shared file image.
    pub fn open(path: &Path) -> io::Result<Arc<MappedFile>> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;

        #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            if len > 0 {
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if !sys::map_failed(ptr) {
                    return Ok(Arc::new(MappedFile {
                        image: FileImage::Mapped {
                            ptr: ptr as *const u8,
                            len,
                        },
                    }));
                }
                // mmap refused (e.g. special filesystem) — fall through to
                // the buffered image rather than failing the open.
            }
        }

        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: u64 words reinterpret as initialized bytes.
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8)
        };
        file.read_exact(&mut bytes[..len])?;
        Ok(Arc::new(MappedFile {
            image: FileImage::Buffered { words, len },
        }))
    }

    /// The file contents.
    pub fn bytes(&self) -> &[u8] {
        match &self.image {
            FileImage::Buffered { words, len } => {
                // SAFETY: the buffer holds at least `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *len) }
            }
            #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
            FileImage::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    /// Whether this image is a live memory-mapping (vs the buffered
    /// fallback).
    pub fn is_mmapped(&self) -> bool {
        match &self.image {
            FileImage::Buffered { .. } => false,
            #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
            FileImage::Mapped { .. } => true,
        }
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
        if let FileImage::Mapped { ptr, len } = self.image {
            unsafe {
                sys::munmap(ptr as *mut std::os::raw::c_void, len);
            }
        }
    }
}

impl fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.bytes().len())
            .field("mmapped", &self.is_mmapped())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Section<T>: owned-or-mapped array storage.
// ---------------------------------------------------------------------------

enum Repr<T: Pod> {
    Owned(Vec<T>),
    Mapped {
        file: Arc<MappedFile>,
        /// Byte offset of the first element inside the file.
        offset: usize,
        /// Element count.
        len: usize,
    },
}

/// An array of `T` that is either owned (`Vec<T>`) or served in place from a
/// shared [`MappedFile`].  Derefs to `&[T]` either way.
pub struct Section<T: Pod>(Repr<T>);

/// Column/row index array storage.
pub type U32Section = Section<u32>;
/// Value array storage.
pub type F64Section = Section<f64>;

impl<T: Pod> Section<T> {
    /// A section over an element range of a mapped file.
    ///
    /// `byte_offset..byte_offset + len * size_of::<T>()` must lie inside the
    /// file.  The in-place reinterpretation additionally needs the pointer
    /// aligned for `T` and a little-endian target; when either fails, the
    /// elements are decoded into an owned vector instead, so the result is
    /// correct on every platform.
    pub fn from_mapped(file: Arc<MappedFile>, byte_offset: usize, len: usize) -> io::Result<Self> {
        let bytes = file.bytes();
        let elem = std::mem::size_of::<T>();
        let end = byte_offset
            .checked_add(len.checked_mul(elem).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "section length overflows")
            })?)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "section offset overflows")
            })?;
        if end > bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "section {byte_offset}..{end} outside file of {} bytes",
                    bytes.len()
                ),
            ));
        }
        let ptr = unsafe { bytes.as_ptr().add(byte_offset) };
        if cfg!(target_endian = "little")
            && (ptr as usize).is_multiple_of(std::mem::align_of::<T>())
        {
            Ok(Section(Repr::Mapped {
                file,
                offset: byte_offset,
                len,
            }))
        } else {
            // Misaligned or big-endian: decode element-wise.
            let raw = &bytes[byte_offset..end];
            let decoded = raw.chunks_exact(elem).map(T::from_le_bytes).collect();
            Ok(Section(Repr::Owned(decoded)))
        }
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.0 {
            Repr::Owned(v) => v,
            Repr::Mapped { file, offset, len } => {
                // SAFETY: bounds and alignment validated in `from_mapped`;
                // the file image is immutable and outlives `self`.
                unsafe {
                    std::slice::from_raw_parts(file.bytes().as_ptr().add(*offset) as *const T, *len)
                }
            }
        }
    }

    /// Whether the section reads through a mapped file (vs owned memory).
    pub fn is_mapped(&self) -> bool {
        matches!(self.0, Repr::Mapped { .. })
    }

    /// Mutable access, converting a mapped section to owned storage on first
    /// use (copy-on-write).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let Repr::Mapped { .. } = self.0 {
            self.0 = Repr::Owned(self.as_slice().to_vec());
        }
        match &mut self.0 {
            Repr::Owned(v) => v,
            Repr::Mapped { .. } => unreachable!("converted to owned above"),
        }
    }

    /// Extract an owned vector (copies only if mapped).
    pub fn into_vec(mut self) -> Vec<T> {
        std::mem::take(self.to_mut())
    }
}

impl<T: Pod> Deref for Section<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for Section<T> {
    fn from(v: Vec<T>) -> Self {
        Section(Repr::Owned(v))
    }
}

impl<T: Pod> Clone for Section<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            Repr::Owned(v) => Section(Repr::Owned(v.clone())),
            Repr::Mapped { file, offset, len } => Section(Repr::Mapped {
                file: Arc::clone(file),
                offset: *offset,
                len: *len,
            }),
        }
    }
}

impl<T: Pod> PartialEq for Section<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod> Default for Section<T> {
    fn default() -> Self {
        Section(Repr::Owned(Vec::new()))
    }
}

impl<T: Pod> fmt::Debug for Section<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Section")
            .field("len", &self.as_slice().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn owned_sections_deref_and_mutate() {
        let mut s: U32Section = vec![1u32, 2, 3].into();
        assert_eq!(&s[..], &[1, 2, 3]);
        assert!(!s.is_mapped());
        s.to_mut().push(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.clone(), s);
    }

    #[test]
    fn mapped_sections_read_file_bytes_in_place() {
        let dir = crate::ooc::TempSpillDir::new("dw-storage-test").unwrap();
        let path = dir.path().join("section.bin");
        let values = [1.5f64, -2.25, 1e300];
        let mut file = File::create(&path).unwrap();
        for v in values {
            file.write_all(&v.to_le_bytes()).unwrap();
        }
        file.write_all(&7u32.to_le_bytes()).unwrap();
        drop(file);

        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.bytes().len(), 28);
        let f: F64Section = Section::from_mapped(Arc::clone(&map), 0, 3).unwrap();
        assert_eq!(&f[..], &values);
        let u: U32Section = Section::from_mapped(Arc::clone(&map), 24, 1).unwrap();
        assert_eq!(&u[..], &[7]);

        // Out-of-bounds ranges are rejected, not UB.
        assert!(Section::<f64>::from_mapped(Arc::clone(&map), 8, 3).is_err());

        // Copy-on-write detaches from the file.
        let mut cow = f.clone();
        cow.to_mut()[0] = 9.0;
        assert_eq!(cow[0], 9.0);
        assert_eq!(f[0], 1.5);
        assert!(!cow.is_mapped());
    }
}
