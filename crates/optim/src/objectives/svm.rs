//! Support vector machine (hinge loss with L2 regularization).

use super::{row_margin, row_margin_slice, Objective, UpdateDensity};
use crate::model::ModelAccess;
use crate::task::TaskData;

/// `F(x) = (1/N) Σᵢ max(0, 1 - yᵢ·(aᵢ·x)) + (reg/2)‖x‖²`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SvmHinge {
    /// L2 regularization strength.
    pub reg: f64,
}

impl Default for SvmHinge {
    fn default() -> Self {
        SvmHinge { reg: 1e-4 }
    }
}

impl SvmHinge {
    /// Create an SVM objective with the given regularization strength.
    pub fn new(reg: f64) -> Self {
        SvmHinge { reg }
    }
}

impl Objective for SvmHinge {
    fn name(&self) -> &'static str {
        "svm"
    }

    fn full_loss(&self, data: &TaskData, model: &[f64]) -> f64 {
        let n = data.examples().max(1) as f64;
        let mut hinge = 0.0;
        for i in 0..data.examples() {
            let margin = data.labels[i] * row_margin_slice(data, i, model);
            hinge += (1.0 - margin).max(0.0);
        }
        let reg_term: f64 = model.iter().map(|w| w * w).sum::<f64>() * self.reg / 2.0;
        hinge / n + reg_term
    }

    fn row_step(&self, data: &TaskData, i: usize, model: &dyn ModelAccess, step: f64) {
        let y = data.labels[i];
        let margin = y * row_margin(data, i, model);
        let row = data.row(i);
        if margin < 1.0 {
            // Sub-gradient of the hinge plus the regularizer restricted to the
            // example's support — the "sparse update" of Section 3.2.
            for (j, v) in row.iter() {
                let w = model.read(j);
                model.add(j, step * (y * v - self.reg * w));
            }
        } else {
            // Only shrink the touched coordinates (lazily-applied regularizer).
            for (j, _) in row.iter() {
                let w = model.read(j);
                model.add(j, -step * self.reg * w);
            }
        }
    }

    fn col_step(&self, data: &TaskData, j: usize, model: &dyn ModelAccess, step: f64) {
        // Column-to-row access: read every example in S(j), accumulate the
        // coordinate sub-gradient, and write only x_j.
        let col = data.col(j);
        if col.nnz() == 0 {
            return;
        }
        let n = data.examples() as f64;
        let mut grad = 0.0;
        for (i, a_ij) in col.iter() {
            let y = data.labels[i];
            let margin = y * row_margin(data, i, model);
            if margin < 1.0 {
                grad += -y * a_ij;
            }
        }
        grad = grad / n + self.reg * model.read(j);
        // Coordinate steps see the full coordinate gradient once per epoch, so
        // scale the step up by N relative to the per-example SGD step to keep
        // the two access methods statistically comparable (Figure 7(a)).
        model.add(j, -step * grad * (n / col.nnz() as f64).max(1.0));
    }

    fn row_update_density(&self) -> UpdateDensity {
        UpdateDensity::Sparse
    }

    fn default_step(&self) -> f64 {
        0.1
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use crate::model::AtomicModel;

    #[test]
    fn loss_at_zero_model_is_one() {
        let data = tiny_classification();
        let obj = SvmHinge::default();
        let loss = obj.full_loss(&data, &vec![0.0; data.dim()]);
        assert!((loss - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_steps_reduce_loss() {
        let data = tiny_classification();
        let obj = SvmHinge::default();
        let start = obj.full_loss(&data, &vec![0.0; data.dim()]);
        let end = run_row_epochs(&obj, &data, 30);
        assert!(
            end < 0.5 * start,
            "loss {end} should drop well below {start}"
        );
    }

    #[test]
    fn col_steps_reduce_loss() {
        let data = tiny_classification();
        let obj = SvmHinge::default();
        let start = obj.full_loss(&data, &vec![0.0; data.dim()]);
        let end = run_col_epochs(&obj, &data, 30);
        assert!(
            end < 0.5 * start,
            "loss {end} should drop well below {start}"
        );
    }

    #[test]
    fn row_update_is_sparse() {
        let data = tiny_classification();
        let obj = SvmHinge::default();
        let model = AtomicModel::zeros(data.dim());
        // Row 0 touches coordinates 0 and 1 only.
        obj.row_step(&data, 0, &model, 0.1);
        assert_ne!(model.read(0), 0.0);
        assert_ne!(model.read(1), 0.0);
        assert_eq!(model.read(2), 0.0);
        assert_eq!(obj.row_update_density(), UpdateDensity::Sparse);
    }

    #[test]
    fn col_step_touches_single_coordinate() {
        let data = tiny_classification();
        let obj = SvmHinge::default();
        let model = AtomicModel::zeros(data.dim());
        obj.col_step(&data, 1, &model, 0.1);
        assert_eq!(model.read(0), 0.0);
        assert_ne!(model.read(1), 0.0);
        assert_eq!(model.read(2), 0.0);
    }

    #[test]
    fn correctly_classified_example_only_regularizes() {
        let data = tiny_classification();
        let obj = SvmHinge::new(0.0);
        // A model that classifies row 0 with a large margin.
        let model = AtomicModel::from_vec(&[5.0, 5.0, 0.0]);
        let before = model.snapshot();
        obj.row_step(&data, 0, &model, 0.1);
        assert_eq!(
            model.snapshot(),
            before,
            "no update when margin >= 1 and reg = 0"
        );
    }

    #[test]
    fn regularization_increases_loss_of_nonzero_model() {
        let data = tiny_classification();
        let weak = SvmHinge::new(0.0);
        let strong = SvmHinge::new(1.0);
        let model = vec![1.0, -1.0, 0.5];
        assert!(strong.full_loss(&data, &model) > weak.full_loss(&data, &model));
    }
}
