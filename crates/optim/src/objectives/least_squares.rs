//! Least-squares regression (squared loss with L2 regularization).

use super::{row_margin, row_margin_slice, Objective, UpdateDensity};
use crate::model::ModelAccess;
use crate::task::TaskData;

/// `F(x) = (1/2N) Σᵢ (aᵢ·x - yᵢ)² + (reg/2)‖x‖²`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LeastSquares {
    /// L2 regularization strength.
    pub reg: f64,
}

impl Default for LeastSquares {
    fn default() -> Self {
        LeastSquares { reg: 1e-6 }
    }
}

impl LeastSquares {
    /// Create a least-squares objective.
    pub fn new(reg: f64) -> Self {
        LeastSquares { reg }
    }
}

impl Objective for LeastSquares {
    fn name(&self) -> &'static str {
        "ls"
    }

    fn full_loss(&self, data: &TaskData, model: &[f64]) -> f64 {
        let n = data.examples().max(1) as f64;
        let mut loss = 0.0;
        for i in 0..data.examples() {
            let residual = row_margin_slice(data, i, model) - data.labels[i];
            loss += residual * residual;
        }
        let reg_term: f64 = model.iter().map(|w| w * w).sum::<f64>() * self.reg / 2.0;
        loss / (2.0 * n) + reg_term
    }

    fn row_step(&self, data: &TaskData, i: usize, model: &dyn ModelAccess, step: f64) {
        let residual = row_margin(data, i, model) - data.labels[i];
        for (j, v) in data.row(i).iter() {
            let w = model.read(j);
            model.add(j, -step * (residual * v + self.reg * w));
        }
    }

    fn col_step(&self, data: &TaskData, j: usize, model: &dyn ModelAccess, step: f64) {
        // Column-to-row coordinate step with a per-coordinate Lipschitz
        // normalization (Σᵢ a_ij²), which is the standard SCD step for
        // quadratic losses and gives near-exact coordinate minimization when
        // `step` is 1.
        let col = data.col(j);
        if col.nnz() == 0 {
            return;
        }
        let mut grad = 0.0;
        let mut curvature = 0.0;
        for (i, a_ij) in col.iter() {
            let residual = row_margin(data, i, model) - data.labels[i];
            grad += residual * a_ij;
            curvature += a_ij * a_ij;
        }
        let n = data.examples() as f64;
        grad = grad / n + self.reg * model.read(j);
        let denominator = curvature / n + self.reg;
        if denominator > 0.0 {
            model.add(j, -step * grad / denominator);
        }
    }

    fn row_update_density(&self) -> UpdateDensity {
        UpdateDensity::Sparse
    }

    fn default_step(&self) -> f64 {
        0.05
    }

    fn default_step_for(&self, data: &TaskData) -> f64 {
        // Per-example SGD on squared loss is stable only for step < 2/‖aᵢ‖²,
        // and the paper's LS datasets (Music, Forest) are dense with 54–91
        // unit-variance features, putting the threshold near 0.02.  Cap the
        // default at half the mean-row-norm stability bound.
        let rows = data.examples();
        if rows == 0 {
            return self.default_step();
        }
        let mean_sq_norm: f64 = (0..rows)
            .map(|i| data.row(i).values.iter().map(|v| v * v).sum::<f64>())
            .sum::<f64>()
            / rows as f64;
        if mean_sq_norm <= 0.0 {
            return self.default_step();
        }
        self.default_step().min(1.0 / mean_sq_norm)
    }

    fn default_col_step(&self) -> f64 {
        // The coordinate step is Σᵢa_ij²-normalized (near-exact coordinate
        // minimization), so the natural step is 1.
        1.0
    }

    fn step_decay(&self) -> f64 {
        0.9
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use crate::model::AtomicModel;

    #[test]
    fn loss_of_exact_solution_is_zero() {
        let data = tiny_regression();
        let obj = LeastSquares::new(0.0);
        let loss = obj.full_loss(&data, &[1.0, 2.0]);
        assert!(loss < 1e-12);
    }

    #[test]
    fn row_steps_approach_exact_solution() {
        let data = tiny_regression();
        let obj = LeastSquares::new(0.0);
        let model = AtomicModel::zeros(2);
        let mut step = 0.2;
        for _ in 0..200 {
            for i in 0..data.examples() {
                obj.row_step(&data, i, &model, step);
            }
            step *= 0.99;
        }
        let snapshot = model.snapshot();
        assert!((snapshot[0] - 1.0).abs() < 0.1, "x0 = {}", snapshot[0]);
        assert!((snapshot[1] - 2.0).abs() < 0.1, "x1 = {}", snapshot[1]);
    }

    #[test]
    fn col_steps_converge_fast_on_quadratic() {
        // Near-exact coordinate minimization needs only a handful of epochs.
        let data = tiny_regression();
        let obj = LeastSquares::new(0.0);
        let model = AtomicModel::zeros(2);
        for _ in 0..20 {
            for j in 0..data.dim() {
                obj.col_step(&data, j, &model, 1.0);
            }
        }
        let loss = obj.full_loss(&data, &model.snapshot());
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn row_and_col_helpers_reduce_loss() {
        let data = tiny_regression();
        let obj = LeastSquares::default();
        let start = obj.full_loss(&data, &vec![0.0; data.dim()]);
        assert!(run_row_epochs(&obj, &data, 50) < 0.2 * start);
        assert!(run_col_epochs(&obj, &data, 50) < 0.2 * start);
    }

    #[test]
    fn empty_column_is_ignored() {
        // Column 2 exists in a 3-wide matrix but has no entries.
        let rows = vec![dw_matrix::SparseVector::from_parts(vec![0], vec![1.0])];
        let matrix = dw_matrix::CsrMatrix::from_sparse_rows(3, &rows).unwrap();
        let data = TaskData::supervised(matrix, vec![1.0]);
        let obj = LeastSquares::default();
        let model = AtomicModel::zeros(3);
        obj.col_step(&data, 2, &model, 1.0);
        assert_eq!(model.read(2), 0.0);
    }
}
