//! Linear-programming relaxation on a graph (vertex-cover style).
//!
//! The paper's LP workload is the approximate LP solver of Sridhar et al.
//! applied to network analysis on the Amazon and Google graphs.  We use the
//! canonical instance of that family: the vertex-cover LP relaxation
//!
//! `min Σ_j c_j x_j  s.t.  x_u + x_v ≥ 1 ∀(u,v) ∈ E,  x ∈ [0,1]^d`
//!
//! solved through the penalty objective
//!
//! `F(x) = Σ_j c_j x_j + λ Σ_{(u,v)∈E} max(0, 1 - x_u - x_v)`
//!
//! with the box constraint enforced by clamping after every update.  The
//! data matrix is the edge-incidence matrix (one row per edge, two non-zeros
//! per row), which is why the cost-based optimizer picks column-wise access
//! for this model (Figure 14).

use super::{Objective, UpdateDensity};
use crate::model::ModelAccess;
use crate::task::TaskData;

/// Penalty formulation of the vertex-cover LP relaxation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GraphLp {
    /// Weight of the constraint-violation penalty.
    pub penalty: f64,
}

impl Default for GraphLp {
    fn default() -> Self {
        GraphLp { penalty: 4.0 }
    }
}

impl GraphLp {
    /// Create an LP objective with the given penalty weight.
    pub fn new(penalty: f64) -> Self {
        GraphLp { penalty }
    }

    fn clamp01(value: f64) -> f64 {
        value.clamp(0.0, 1.0)
    }
}

impl Objective for GraphLp {
    fn name(&self) -> &'static str {
        "lp"
    }

    fn full_loss(&self, data: &TaskData, model: &[f64]) -> f64 {
        let n = data.examples().max(1) as f64;
        let mut cost = 0.0;
        for (j, &c) in data.costs.iter().enumerate() {
            cost += c * model[j].clamp(0.0, 1.0);
        }
        let mut violation = 0.0;
        for i in 0..data.examples() {
            let sum: f64 = data
                .row(i)
                .iter()
                .map(|(j, _)| model[j].clamp(0.0, 1.0))
                .sum();
            violation += (1.0 - sum).max(0.0);
        }
        (cost + self.penalty * violation) / n
    }

    fn row_step(&self, data: &TaskData, i: usize, model: &dyn ModelAccess, step: f64) {
        // Sub-gradient of the per-edge penalty plus this edge's share of the
        // vertex-cost term (c_j / deg_j so that one epoch applies the full
        // cost gradient).
        let row = data.row(i);
        let sum: f64 = row.iter().map(|(j, _)| model.read(j)).sum();
        let violated = sum < 1.0;
        for (j, _) in row.iter() {
            let degree = data.col_nnz(j).max(1) as f64;
            let mut gradient = data.costs[j] / degree;
            if violated {
                gradient -= self.penalty;
            }
            let updated = Self::clamp01(model.read(j) - step * gradient);
            model.write(j, updated);
        }
    }

    fn col_step(&self, data: &TaskData, j: usize, model: &dyn ModelAccess, step: f64) {
        // Column-to-row access: read the incident edges (rows of S(j)) and
        // their other endpoints, then update only x_j.
        let col = data.col(j);
        let mut gradient = data.costs[j];
        for (i, _) in col.iter() {
            let sum: f64 = data.row(i).iter().map(|(k, _)| model.read(k)).sum();
            if sum < 1.0 {
                gradient -= self.penalty;
            }
        }
        let updated = Self::clamp01(model.read(j) - step * gradient);
        model.write(j, updated);
    }

    fn row_update_density(&self) -> UpdateDensity {
        UpdateDensity::Sparse
    }

    fn default_step(&self) -> f64 {
        0.05
    }

    fn step_decay(&self) -> f64 {
        0.9
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use crate::model::AtomicModel;

    #[test]
    fn loss_at_zero_is_full_violation() {
        let data = tiny_graph();
        let obj = GraphLp::new(4.0);
        // 3 edges all violated, no cost: 3 * 4 / 3 edges = 4.
        let loss = obj.full_loss(&data, &[0.0; 4]);
        assert!((loss - 4.0).abs() < 1e-12);
    }

    #[test]
    fn feasible_cover_has_cost_only() {
        let data = tiny_graph();
        let obj = GraphLp::new(4.0);
        // x = 1 on vertices 1 and 2 covers all path edges.
        let loss = obj.full_loss(&data, &[0.0, 1.0, 1.0, 0.0]);
        assert!((loss - (0.5 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn row_steps_find_near_feasible_solution() {
        let data = tiny_graph();
        let obj = GraphLp::default();
        let end = run_row_epochs(&obj, &data, 100);
        let start = obj.full_loss(&data, &[0.0; 4]);
        assert!(end < 0.4 * start, "loss {end} vs start {start}");
    }

    #[test]
    fn col_steps_find_near_feasible_solution() {
        let data = tiny_graph();
        let obj = GraphLp::default();
        let end = run_col_epochs(&obj, &data, 100);
        let start = obj.full_loss(&data, &[0.0; 4]);
        assert!(end < 0.4 * start, "loss {end} vs start {start}");
    }

    #[test]
    fn iterates_stay_in_box() {
        let data = tiny_graph();
        let obj = GraphLp::default();
        let model = AtomicModel::zeros(4);
        for epoch in 0..20 {
            for i in 0..data.examples() {
                obj.row_step(&data, i, &model, 0.5);
            }
            for j in 0..data.dim() {
                obj.col_step(&data, j, &model, 0.5);
            }
            for j in 0..data.dim() {
                let x = model.read(j);
                assert!((0.0..=1.0).contains(&x), "epoch {epoch} coord {j}: {x}");
            }
        }
    }

    #[test]
    fn col_step_writes_single_coordinate() {
        let data = tiny_graph();
        let obj = GraphLp::default();
        let model = AtomicModel::zeros(4);
        obj.col_step(&data, 1, &model, 0.1);
        assert_eq!(model.read(0), 0.0);
        assert!(model.read(1) > 0.0);
        assert_eq!(model.read(2), 0.0);
        assert_eq!(model.read(3), 0.0);
    }
}
