//! Quadratic program on a graph (Laplacian smoothing / label propagation).
//!
//! The paper's QP workload is network analysis on the Amazon and Google
//! graphs.  We use the canonical graph QP: anchor every vertex to a prior
//! score `c_j` and smooth along edges,
//!
//! `F(x) = (1/2) Σ_{(u,v)∈E} (x_u - x_v)² + (μ/2) Σ_j (x_j - c_j)²`
//!
//! which is strongly convex with a unique minimizer.  The column-to-row
//! update performs exact coordinate minimization
//! `x_j ← (μ·c_j + Σ_{k∈N(j)} x_k) / (μ + deg_j)`, which is why the
//! column-wise plan needs roughly an order of magnitude fewer epochs than
//! per-edge SGD — the behaviour behind Figure 12's LP/QP panels.

use super::{Objective, UpdateDensity};
use crate::model::ModelAccess;
use crate::task::TaskData;

/// Graph-Laplacian QP with per-vertex anchors.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GraphQp {
    /// Anchor strength μ.
    pub anchor: f64,
}

impl Default for GraphQp {
    fn default() -> Self {
        GraphQp { anchor: 0.5 }
    }
}

impl GraphQp {
    /// Create a QP objective with the given anchor strength.
    pub fn new(anchor: f64) -> Self {
        GraphQp { anchor }
    }

    /// The other endpoint of edge `i` relative to vertex `j`, with its value.
    fn other_endpoint(data: &TaskData, i: usize, j: usize) -> Option<usize> {
        data.row(i).iter().map(|(k, _)| k).find(|&k| k != j)
    }
}

impl Objective for GraphQp {
    fn name(&self) -> &'static str {
        "qp"
    }

    fn full_loss(&self, data: &TaskData, model: &[f64]) -> f64 {
        let n = data.examples().max(1) as f64;
        let mut smoothness = 0.0;
        for i in 0..data.examples() {
            let endpoints: Vec<usize> = data.row(i).iter().map(|(j, _)| j).collect();
            if endpoints.len() == 2 {
                let diff = model[endpoints[0]] - model[endpoints[1]];
                smoothness += diff * diff;
            }
        }
        let mut anchor_term = 0.0;
        for (j, &c) in data.costs.iter().enumerate() {
            let diff = model[j] - c;
            anchor_term += diff * diff;
        }
        (0.5 * smoothness + 0.5 * self.anchor * anchor_term) / n
    }

    fn row_step(&self, data: &TaskData, i: usize, model: &dyn ModelAccess, step: f64) {
        let endpoints: Vec<usize> = data.row(i).iter().map(|(j, _)| j).collect();
        if endpoints.len() != 2 {
            return;
        }
        let (u, v) = (endpoints[0], endpoints[1]);
        let xu = model.read(u);
        let xv = model.read(v);
        let diff = xu - xv;
        // Per-edge share of the anchor gradient: μ(x_j - c_j)/deg_j.
        let degree_u = data.col_nnz(u).max(1) as f64;
        let degree_v = data.col_nnz(v).max(1) as f64;
        model.add(
            u,
            -step * (diff + self.anchor * (xu - data.costs[u]) / degree_u),
        );
        model.add(
            v,
            -step * (-diff + self.anchor * (xv - data.costs[v]) / degree_v),
        );
    }

    fn col_step(&self, data: &TaskData, j: usize, model: &dyn ModelAccess, step: f64) {
        // Exact coordinate minimization (damped by `step`, exact at step=1).
        let col = data.col(j);
        let degree = col.nnz() as f64;
        let mut neighbor_sum = 0.0;
        for (i, _) in col.iter() {
            if let Some(k) = Self::other_endpoint(data, i, j) {
                neighbor_sum += model.read(k);
            }
        }
        let target = (self.anchor * data.costs[j] + neighbor_sum) / (self.anchor + degree);
        let current = model.read(j);
        model.write(j, current + step * (target - current));
    }

    fn row_update_density(&self) -> UpdateDensity {
        UpdateDensity::Sparse
    }

    fn default_step(&self) -> f64 {
        0.2
    }

    fn step_decay(&self) -> f64 {
        0.95
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use crate::model::AtomicModel;

    #[test]
    fn loss_at_anchor_free_minimum() {
        let data = tiny_graph();
        let obj = GraphQp::new(0.5);
        // Constant vectors have zero smoothness; anchors pull toward costs.
        let constant = vec![0.75; 4];
        let loss = obj.full_loss(&data, &constant);
        assert!(loss > 0.0);
        // The anchor vector itself has zero anchor penalty but non-zero
        // smoothness on the path graph (costs are 1, 0.5, 0.5, 1).
        let anchors = data.costs.clone();
        let anchor_loss = obj.full_loss(&data, &anchors);
        assert!(anchor_loss > 0.0);
    }

    #[test]
    fn col_steps_reach_near_optimum_quickly() {
        let data = tiny_graph();
        let obj = GraphQp::default();
        let model = AtomicModel::zeros(4);
        for _ in 0..50 {
            for j in 0..data.dim() {
                obj.col_step(&data, j, &model, 1.0);
            }
        }
        let fast = obj.full_loss(&data, &model.snapshot());
        // Row SGD from zero with the same epoch budget should not be better.
        let slow = run_row_epochs(&obj, &data, 50);
        assert!(fast <= slow + 1e-9, "col {fast} vs row {slow}");
    }

    #[test]
    fn row_and_col_steps_reduce_loss() {
        let data = tiny_graph();
        let obj = GraphQp::default();
        let start = obj.full_loss(&data, &[0.0; 4]);
        assert!(run_row_epochs(&obj, &data, 80) < 0.8 * start);
        assert!(run_col_epochs(&obj, &data, 80) < 0.8 * start);
    }

    #[test]
    fn exact_coordinate_step_is_fixed_point_at_optimum() {
        // Solve the tiny QP by long coordinate descent; a further exact
        // coordinate step must not move the solution.
        let data = tiny_graph();
        let obj = GraphQp::default();
        let model = AtomicModel::zeros(4);
        for _ in 0..500 {
            for j in 0..data.dim() {
                obj.col_step(&data, j, &model, 1.0);
            }
        }
        let before = model.snapshot();
        for j in 0..data.dim() {
            obj.col_step(&data, j, &model, 1.0);
        }
        let after = model.snapshot();
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn row_step_ignores_degenerate_rows() {
        // A row with a single endpoint (self-loop-like) is skipped.
        let rows = vec![dw_matrix::SparseVector::from_parts(vec![0], vec![1.0])];
        let matrix = dw_matrix::CsrMatrix::from_sparse_rows(2, &rows).unwrap();
        let data = TaskData::graph(matrix, vec![1.0, 1.0]);
        let obj = GraphQp::default();
        let model = AtomicModel::zeros(2);
        obj.row_step(&data, 0, &model, 0.5);
        assert_eq!(model.snapshot(), vec![0.0, 0.0]);
    }
}
