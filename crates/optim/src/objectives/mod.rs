//! The five statistical models of the paper's evaluation.
//!
//! Each model implements [`Objective`], which packages the paper's *model
//! specification*: a row-wise update `f_row` (used by SGD-style execution)
//! and a column-to-row update `f_col`/`f_ctr` (used by SCD-style execution),
//! both mutating a model replica through [`ModelAccess`], plus the full loss
//! used to measure distance to the optimum.
//!
//! | Model | Objective | Row update | Column update |
//! |-------|-----------|------------|----------------|
//! | SVM   | hinge + L2 | per-example subgradient (sparse) | per-coordinate subgradient |
//! | LR    | logistic + L2 | per-example gradient (sparse) | per-coordinate gradient |
//! | LS    | squared loss + L2 | per-example gradient (sparse) | per-coordinate exact-ish step |
//! | LP    | vertex-cover relaxation penalty | per-edge subgradient | per-vertex subgradient |
//! | QP    | graph Laplacian + anchors | per-edge gradient | per-vertex exact minimization |

mod graph_lp;
mod graph_qp;
mod least_squares;
mod logistic;
mod svm;

pub use graph_lp::GraphLp;
pub use graph_qp::GraphQp;
pub use least_squares::LeastSquares;
pub use logistic::Logistic;
pub use svm::SvmHinge;

use crate::model::ModelAccess;
use crate::task::TaskData;
use dw_matrix::{dot_sparse_dense, SparseVector};

/// Whether a row-wise gradient step writes only the coordinates where the
/// example is non-zero (sparse update) or the whole model (dense update).
///
/// Section 3.2: "for models such as SVM, each gradient step in row-wise
/// access only updates the coordinates where the input vector contains
/// non-zero elements.  We call this scenario a sparse update."  The
/// cost-based optimizer charges `Σᵢ nᵢ` writes for sparse updates and `d·N`
/// for dense ones (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum UpdateDensity {
    /// Row steps touch only the example's non-zero coordinates.
    Sparse,
    /// Row steps touch every model coordinate.
    Dense,
}

/// A statistical model expressed as first-order update functions.
pub trait Objective: Send + Sync {
    /// Short name used in reports ("svm", "lr", ...).
    fn name(&self) -> &'static str;

    /// Objective value of `model` on the full dataset (the paper's "loss").
    fn full_loss(&self, data: &TaskData, model: &[f64]) -> f64;

    /// `f_row`: process example `i`, updating the model in place.
    fn row_step(&self, data: &TaskData, i: usize, model: &dyn ModelAccess, step: f64);

    /// `f_col` / `f_ctr`: process coordinate `j`, updating `model[j]` only.
    ///
    /// Implementations read the rows in `S(j)` (column-to-row access) and
    /// write a single coordinate, matching the access-pattern contract of
    /// Section 3.1.
    fn col_step(&self, data: &TaskData, j: usize, model: &dyn ModelAccess, step: f64);

    /// Density of the row-wise update (drives the Figure 6 write cost).
    fn row_update_density(&self) -> UpdateDensity {
        UpdateDensity::Sparse
    }

    /// Reasonable default step size for this objective.
    fn default_step(&self) -> f64 {
        0.1
    }

    /// Default step size calibrated to `data`.
    ///
    /// Most objectives just use [`Objective::default_step`]; objectives
    /// whose stability threshold depends on the data scale (least squares:
    /// step < 2/‖aᵢ‖²) override this, and the engine and reference solver
    /// call it whenever no explicit step is configured.
    fn default_step_for(&self, data: &TaskData) -> f64 {
        let _ = data;
        self.default_step()
    }

    /// Default step size for the column-to-row (SCD) update.
    ///
    /// Coordinate steps are usually Lipschitz-normalized (see the quadratic
    /// objectives), so their natural step is 1.0-ish even when the SGD step
    /// must be small; objectives where the two differ override this.
    fn default_col_step(&self) -> f64 {
        self.default_step()
    }

    /// Per-epoch multiplicative step-size decay.
    fn step_decay(&self) -> f64 {
        0.95
    }

    /// Score one input against an immutable model snapshot — the read-only
    /// serving entry point.
    ///
    /// Unlike every other method here, this neither reads [`TaskData`] nor
    /// mutates a model: a `Predictor` holds a published snapshot (a plain
    /// slice) and evaluates fresh inputs against it while training
    /// continues elsewhere.  The default is the raw prediction margin
    /// `input · model`; objectives with a natural probabilistic output
    /// (logistic regression) override it with their link function.
    fn score(&self, input: &SparseVector, model: &[f64]) -> f64 {
        dot_sparse_dense(input, model)
    }
}

/// Compute the prediction margin `a_i · x` of one CSR row against a model
/// snapshot exposed through [`ModelAccess`].
pub(crate) fn row_margin(data: &TaskData, i: usize, model: &dyn ModelAccess) -> f64 {
    let mut margin = 0.0;
    for (j, v) in data.row(i).iter() {
        margin += v * model.read(j);
    }
    margin
}

/// Compute the prediction margin against a plain slice snapshot, routed
/// through the task's kernel selector so the plan's accumulator width and
/// index encoding apply on this hot path.
pub(crate) fn row_margin_slice(data: &TaskData, i: usize, model: &[f64]) -> f64 {
    data.row_dot(i, model)
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::model::AtomicModel;
    use crate::task::TaskData;
    use dw_matrix::{CsrMatrix, SparseVector};

    /// A tiny linearly-separable binary classification problem.
    pub fn tiny_classification() -> TaskData {
        let rows = vec![
            SparseVector::from_parts(vec![0, 1], vec![1.0, 0.5]),
            SparseVector::from_parts(vec![0, 2], vec![0.8, 1.0]),
            SparseVector::from_parts(vec![1, 2], vec![-1.0, -0.6]),
            SparseVector::from_parts(vec![0, 1, 2], vec![-0.9, -0.4, -1.0]),
        ];
        let matrix = CsrMatrix::from_sparse_rows(3, &rows).unwrap();
        TaskData::supervised(matrix, vec![1.0, 1.0, -1.0, -1.0])
    }

    /// A tiny regression problem with an exact solution.
    pub fn tiny_regression() -> TaskData {
        let rows = vec![
            SparseVector::from_parts(vec![0], vec![1.0]),
            SparseVector::from_parts(vec![1], vec![2.0]),
            SparseVector::from_parts(vec![0, 1], vec![1.0, 1.0]),
        ];
        let matrix = CsrMatrix::from_sparse_rows(2, &rows).unwrap();
        // Consistent with x = [1, 2]: labels 1, 4, 3.
        TaskData::supervised(matrix, vec![1.0, 4.0, 3.0])
    }

    /// A 4-vertex path graph for LP / QP tests.
    pub fn tiny_graph() -> TaskData {
        let rows = vec![
            SparseVector::from_parts(vec![0, 1], vec![1.0, 1.0]),
            SparseVector::from_parts(vec![1, 2], vec![1.0, 1.0]),
            SparseVector::from_parts(vec![2, 3], vec![1.0, 1.0]),
        ];
        let matrix = CsrMatrix::from_sparse_rows(4, &rows).unwrap();
        TaskData::graph(matrix, vec![1.0, 0.5, 0.5, 1.0])
    }

    /// Run `epochs` sequential row-wise epochs and return the final loss.
    pub fn run_row_epochs(obj: &dyn Objective, data: &TaskData, epochs: usize) -> f64 {
        let model = AtomicModel::zeros(data.dim());
        let mut step = obj.default_step();
        for _ in 0..epochs {
            for i in 0..data.examples() {
                obj.row_step(data, i, &model, step);
            }
            step *= obj.step_decay();
        }
        obj.full_loss(data, &model.snapshot())
    }

    /// Run `epochs` sequential column-wise epochs and return the final loss.
    pub fn run_col_epochs(obj: &dyn Objective, data: &TaskData, epochs: usize) -> f64 {
        let model = AtomicModel::zeros(data.dim());
        let mut step = obj.default_col_step();
        for _ in 0..epochs {
            for j in 0..data.dim() {
                obj.col_step(data, j, &model, step);
            }
            step *= obj.step_decay();
        }
        obj.full_loss(data, &model.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use crate::model::AtomicModel;

    #[test]
    fn margins_agree_between_access_paths() {
        let data = tiny_classification();
        let model = AtomicModel::from_vec(&[0.5, -1.0, 2.0]);
        let snapshot = model.snapshot();
        for i in 0..data.examples() {
            let a = row_margin(&data, i, &model);
            let b = row_margin_slice(&data, i, &snapshot);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn score_defaults_to_the_margin_and_logistic_calibrates_it() {
        let model = vec![0.5, -1.0, 2.0];
        let input = SparseVector::from_parts(vec![0, 2], vec![2.0, 1.0]);
        let margin = 2.0 * 0.5 + 1.0 * 2.0;
        assert_eq!(SvmHinge::default().score(&input, &model), margin);
        assert_eq!(LeastSquares::default().score(&input, &model), margin);
        // Logistic maps the same margin through the sigmoid link.
        let p = Logistic::default().score(&input, &model);
        assert!(p > 0.5 && p < 1.0, "positive margin scores above 0.5: {p}");
        let zero = Logistic::default().score(&input, &[0.0; 3]);
        assert_eq!(zero, 0.5);
    }

    #[test]
    fn all_objectives_report_names_and_densities() {
        let objs: Vec<Box<dyn Objective>> = vec![
            Box::new(SvmHinge::default()),
            Box::new(Logistic::default()),
            Box::new(LeastSquares::default()),
            Box::new(GraphLp::default()),
            Box::new(GraphQp::default()),
        ];
        let names: Vec<&str> = objs.iter().map(|o| o.name()).collect();
        assert_eq!(names, vec!["svm", "lr", "ls", "lp", "qp"]);
        for o in &objs {
            assert!(o.default_step() > 0.0);
            assert!(o.step_decay() > 0.0 && o.step_decay() <= 1.0);
        }
    }
}
