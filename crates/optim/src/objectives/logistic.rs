//! Logistic regression (log loss with L2 regularization).

use super::{row_margin, row_margin_slice, Objective, UpdateDensity};
use crate::model::ModelAccess;
use crate::task::TaskData;

/// `F(x) = (1/N) Σᵢ log(1 + exp(-yᵢ·(aᵢ·x))) + (reg/2)‖x‖²`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Logistic {
    /// L2 regularization strength.
    pub reg: f64,
}

impl Default for Logistic {
    fn default() -> Self {
        Logistic { reg: 1e-4 }
    }
}

impl Logistic {
    /// Create a logistic-regression objective.
    pub fn new(reg: f64) -> Self {
        Logistic { reg }
    }
}

/// Numerically-stable `log(1 + exp(z))`.
fn log1p_exp(z: f64) -> f64 {
    if z > 30.0 {
        z
    } else if z < -30.0 {
        0.0
    } else {
        z.exp().ln_1p()
    }
}

/// Numerically-stable logistic sigmoid.
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Objective for Logistic {
    fn name(&self) -> &'static str {
        "lr"
    }

    fn full_loss(&self, data: &TaskData, model: &[f64]) -> f64 {
        let n = data.examples().max(1) as f64;
        let mut loss = 0.0;
        for i in 0..data.examples() {
            let margin = data.labels[i] * row_margin_slice(data, i, model);
            loss += log1p_exp(-margin);
        }
        let reg_term: f64 = model.iter().map(|w| w * w).sum::<f64>() * self.reg / 2.0;
        loss / n + reg_term
    }

    fn row_step(&self, data: &TaskData, i: usize, model: &dyn ModelAccess, step: f64) {
        let y = data.labels[i];
        let margin = y * row_margin(data, i, model);
        // dL/d(margin) = -sigmoid(-margin); gradient wrt x_j is -y·a_ij·σ(-m).
        let coefficient = y * sigmoid(-margin);
        for (j, v) in data.row(i).iter() {
            let w = model.read(j);
            model.add(j, step * (coefficient * v - self.reg * w));
        }
    }

    fn col_step(&self, data: &TaskData, j: usize, model: &dyn ModelAccess, step: f64) {
        let col = data.col(j);
        if col.nnz() == 0 {
            return;
        }
        let n = data.examples() as f64;
        let mut grad = 0.0;
        for (i, a_ij) in col.iter() {
            let y = data.labels[i];
            let margin = y * row_margin(data, i, model);
            grad += -y * a_ij * sigmoid(-margin);
        }
        grad = grad / n + self.reg * model.read(j);
        model.add(j, -step * grad * (n / col.nnz() as f64).max(1.0));
    }

    fn row_update_density(&self) -> UpdateDensity {
        UpdateDensity::Sparse
    }

    fn default_step(&self) -> f64 {
        0.25
    }

    /// Probability of the positive class: `σ(input · model)` instead of the
    /// raw margin, so serving scores are calibrated in `(0, 1)`.
    fn score(&self, input: &dw_matrix::SparseVector, model: &[f64]) -> f64 {
        sigmoid(dw_matrix::dot_sparse_dense(input, model))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;

    #[test]
    fn loss_at_zero_model_is_log2() {
        let data = tiny_classification();
        let obj = Logistic::default();
        let loss = obj.full_loss(&data, &vec![0.0; data.dim()]);
        assert!((loss - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0 && sigmoid(1000.0) > 0.999);
        assert!(sigmoid(-1000.0) >= 0.0 && sigmoid(-1000.0) < 1e-6);
        assert!(log1p_exp(1000.0).is_finite());
        assert_eq!(log1p_exp(-1000.0), 0.0);
    }

    #[test]
    fn row_and_col_steps_reduce_loss() {
        let data = tiny_classification();
        let obj = Logistic::default();
        let start = obj.full_loss(&data, &vec![0.0; data.dim()]);
        assert!(run_row_epochs(&obj, &data, 40) < 0.6 * start);
        assert!(run_col_epochs(&obj, &data, 40) < 0.6 * start);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let data = tiny_classification();
        let _reg_free = Logistic::new(0.0);
        // Check the row-step direction against a numerical gradient of the
        // single-example loss at a non-trivial model point.
        let base = vec![0.3, -0.2, 0.1];
        let i = 0;
        let eps = 1e-6;
        let single_loss = |m: &[f64]| {
            let margin = data.labels[i] * row_margin_slice(&data, i, m);
            super::log1p_exp(-margin)
        };
        for j in 0..data.dim() {
            let mut plus = base.clone();
            plus[j] += eps;
            let mut minus = base.clone();
            minus[j] -= eps;
            let numerical = (single_loss(&plus) - single_loss(&minus)) / (2.0 * eps);
            // The analytic gradient applied by row_step is -(coefficient * a_ij).
            let margin = data.labels[i] * row_margin_slice(&data, i, &base);
            let coefficient = data.labels[i] * super::sigmoid(-margin);
            let analytic = -coefficient * data.csr().get(i, j);
            assert!(
                (numerical - analytic).abs() < 1e-5,
                "coordinate {j}: numerical {numerical} analytic {analytic}"
            );
        }
    }
}
