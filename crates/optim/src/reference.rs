//! Reference solver used to estimate the optimal loss.
//!
//! Section 4.1: "We obtain the optimal loss by running all systems for one
//! hour and choosing the lowest."  At our reduced scale the same effect is
//! achieved by running both access methods for a generous number of epochs
//! with a decaying step size and taking the lowest loss observed.

use crate::epoch::{run_col_epoch, run_row_epoch, shuffled_indices};
use crate::model::{AtomicModel, ModelAccess};
use crate::objectives::Objective;
use crate::task::TaskData;

/// Estimate the optimal loss of `objective` on `data`.
///
/// Runs `epochs` epochs of the row-wise method and of the column-wise method
/// from a zero model and returns the minimum loss seen at any epoch
/// boundary, exactly mirroring the paper's "lowest loss over a long run"
/// protocol.
pub fn reference_optimum(objective: &dyn Objective, data: &TaskData, epochs: usize) -> f64 {
    let mut best = objective.full_loss(data, &vec![0.0; data.dim()]);

    // Row-wise (SGD) reference run.
    let model = AtomicModel::zeros(data.dim());
    let mut step = objective.default_step_for(data);
    for epoch in 0..epochs {
        let order = shuffled_indices(data.examples(), epoch as u64);
        run_row_epoch(objective, data, &model, step, &order);
        step *= objective.step_decay();
        best = best.min(objective.full_loss(data, &model.snapshot()));
    }

    // Column-wise (SCD) reference run.
    let model = AtomicModel::zeros(data.dim());
    let mut step = objective.default_col_step();
    for epoch in 0..epochs {
        let order = shuffled_indices(data.dim(), 1000 + epoch as u64);
        run_col_epoch(objective, data, &model, step, &order);
        step *= objective.step_decay();
        best = best.min(objective.full_loss(data, &model.snapshot()));
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectives::{test_support, GraphQp, LeastSquares, SvmHinge};

    #[test]
    fn reference_is_below_initial_loss() {
        let data = test_support::tiny_classification();
        let obj = SvmHinge::default();
        let initial = obj.full_loss(&data, &vec![0.0; data.dim()]);
        let optimum = reference_optimum(&obj, &data, 30);
        assert!(optimum < initial);
    }

    #[test]
    fn reference_near_zero_for_consistent_regression() {
        let data = test_support::tiny_regression();
        let obj = LeastSquares::new(0.0);
        let optimum = reference_optimum(&obj, &data, 50);
        assert!(optimum < 1e-3, "optimum {optimum}");
    }

    #[test]
    fn reference_monotone_in_epoch_budget() {
        let data = test_support::tiny_graph();
        let obj = GraphQp::default();
        let short = reference_optimum(&obj, &data, 3);
        let long = reference_optimum(&obj, &data, 30);
        assert!(long <= short + 1e-12);
    }
}
