//! The mutable model abstraction and its lock-free implementation.
//!
//! Section 2.1 of the paper distinguishes coherent execution (the model is
//! read and written inside a critical section) from the Hogwild! memory
//! model, which "relies on the fact that writes of individual components are
//! atomic, but does not require that the entire vector be updated
//! atomically".  [`AtomicModel`] implements exactly that contract: every
//! component is an `AtomicU64` holding an `f64` bit pattern, reads and
//! writes use relaxed ordering, and there is no lock anywhere.  Concurrent
//! workers may interleave and overwrite each other's updates — that is the
//! point; Niu et al. prove SGD still converges under this model.
//!
//! One implementation serves every replication strategy: a PerCore replica
//! is an `AtomicModel` touched by one worker, a PerNode replica is shared by
//! the workers of one node, and the PerMachine (Hogwild!) replica is shared
//! by every worker in the machine.

use std::sync::atomic::{AtomicU64, Ordering};

/// Read/update access to a (possibly shared) model replica.
///
/// `add` takes `&self`: implementations use interior mutability so that many
/// workers can update the same replica without locking.
pub trait ModelAccess: Sync + Send {
    /// Model dimension `d`.
    fn dim(&self) -> usize;

    /// Read component `j`.
    fn read(&self, j: usize) -> f64;

    /// Atomically add `delta` to component `j`.
    fn add(&self, j: usize, delta: f64);

    /// Overwrite component `j`.
    fn write(&self, j: usize, value: f64);

    /// Copy the current model into a plain vector (not atomic as a whole —
    /// concurrent writers may be mid-update, which is fine for averaging).
    fn snapshot(&self) -> Vec<f64> {
        (0..self.dim()).map(|j| self.read(j)).collect()
    }
}

/// A lock-free model vector in the Hogwild! memory model.
#[derive(Debug)]
pub struct AtomicModel {
    cells: Vec<AtomicU64>,
}

impl AtomicModel {
    /// A zero-initialized model of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        AtomicModel {
            cells: (0..dim).map(|_| AtomicU64::new(0f64.to_bits())).collect(),
        }
    }

    /// A model initialized from an existing vector.
    pub fn from_vec(values: &[f64]) -> Self {
        AtomicModel {
            cells: values.iter().map(|v| AtomicU64::new(v.to_bits())).collect(),
        }
    }

    /// Overwrite the whole model from a vector.
    ///
    /// Component writes are individually atomic; the vector as a whole is
    /// not, matching the incoherent memory model.
    pub fn store_vec(&self, values: &[f64]) {
        assert_eq!(values.len(), self.cells.len(), "model dimension mismatch");
        for (cell, v) in self.cells.iter().zip(values) {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Set every component to zero.
    pub fn reset(&self) {
        for cell in &self.cells {
            cell.store(0f64.to_bits(), Ordering::Relaxed);
        }
    }
}

impl ModelAccess for AtomicModel {
    fn dim(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    fn read(&self, j: usize) -> f64 {
        f64::from_bits(self.cells[j].load(Ordering::Relaxed))
    }

    #[inline]
    fn add(&self, j: usize, delta: f64) {
        // A read-modify-write without compare-and-swap: under Hogwild!
        // semantics lost updates are acceptable, and the paper's PerMachine
        // strategy explicitly allows "different writers to overwrite each
        // other".  fetch_update would serialize writers and change the
        // memory behaviour being modelled, so we deliberately use a plain
        // load + store of the component.
        let current = f64::from_bits(self.cells[j].load(Ordering::Relaxed));
        self.cells[j].store((current + delta).to_bits(), Ordering::Relaxed);
    }

    #[inline]
    fn write(&self, j: usize, value: f64) {
        self.cells[j].store(value.to_bits(), Ordering::Relaxed);
    }
}

/// Average a set of model replicas into a single vector.
///
/// This is the model-synchronization primitive of Section 3.3: "one thread
/// periodically reads models on all other cores, averages their results, and
/// updates each replica".
pub fn average_models(replicas: &[&AtomicModel]) -> Vec<f64> {
    assert!(!replicas.is_empty(), "cannot average zero replicas");
    let dim = replicas[0].dim();
    let mut sum = vec![0.0; dim];
    for replica in replicas {
        assert_eq!(replica.dim(), dim, "replica dimension mismatch");
        for (j, s) in sum.iter_mut().enumerate() {
            *s += replica.read(j);
        }
    }
    let scale = 1.0 / replicas.len() as f64;
    for s in sum.iter_mut() {
        *s *= scale;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn zeros_and_reads() {
        let m = AtomicModel::zeros(3);
        assert_eq!(m.dim(), 3);
        assert_eq!(m.snapshot(), vec![0.0; 3]);
        m.add(0, 1.5);
        m.add(0, 2.0);
        m.write(2, -1.0);
        assert_eq!(m.read(0), 3.5);
        assert_eq!(m.read(2), -1.0);
    }

    #[test]
    fn from_vec_and_store() {
        let m = AtomicModel::from_vec(&[1.0, 2.0]);
        assert_eq!(m.snapshot(), vec![1.0, 2.0]);
        m.store_vec(&[3.0, 4.0]);
        assert_eq!(m.snapshot(), vec![3.0, 4.0]);
        m.reset();
        assert_eq!(m.snapshot(), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn store_vec_dimension_checked() {
        AtomicModel::zeros(2).store_vec(&[1.0]);
    }

    #[test]
    fn averaging() {
        let a = AtomicModel::from_vec(&[1.0, 3.0]);
        let b = AtomicModel::from_vec(&[3.0, 5.0]);
        assert_eq!(average_models(&[&a, &b]), vec![2.0, 4.0]);
        assert_eq!(average_models(&[&a]), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "zero replicas")]
    fn averaging_requires_replicas() {
        let _ = average_models(&[]);
    }

    #[test]
    fn concurrent_updates_land() {
        // With disjoint components there are no lost updates even under the
        // relaxed Hogwild! protocol.
        let model = Arc::new(AtomicModel::zeros(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let m = Arc::clone(&model);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.add(t * 2, 1.0);
                        m.add(t * 2 + 1, -1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for t in 0..4 {
            assert_eq!(model.read(t * 2), 1000.0);
            assert_eq!(model.read(t * 2 + 1), -1000.0);
        }
    }

    #[test]
    fn concurrent_contended_updates_make_progress() {
        // On a contended component Hogwild! may lose updates but must make
        // forward progress and never produce garbage bit patterns.
        let model = Arc::new(AtomicModel::zeros(1));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&model);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        m.add(0, 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let value = model.read(0);
        assert!(value > 0.0, "some updates must land");
        assert!(value <= 40_000.0, "cannot exceed the total update count");
        assert!(value.fract() == 0.0, "updates are whole increments");
    }

    proptest! {
        #[test]
        fn prop_average_of_identical_replicas_is_identity(v in proptest::collection::vec(-100.0f64..100.0, 1..32)) {
            let a = AtomicModel::from_vec(&v);
            let b = AtomicModel::from_vec(&v);
            let avg = average_models(&[&a, &b]);
            for (x, y) in avg.iter().zip(&v) {
                prop_assert!((x - y).abs() < 1e-12);
            }
        }

        #[test]
        fn prop_add_accumulates(deltas in proptest::collection::vec(-10.0f64..10.0, 1..64)) {
            let m = AtomicModel::zeros(1);
            let mut expected = 0.0;
            for &d in &deltas {
                m.add(0, d);
                expected += d;
            }
            prop_assert!((m.read(0) - expected).abs() < 1e-9);
        }
    }
}
