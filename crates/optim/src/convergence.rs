//! Convergence bookkeeping.
//!
//! The paper's statistical-efficiency metric is "the number of epochs needed
//! to converge to within x% of the optimal loss" and its end-to-end metric
//! is "the wall-clock time to reach a loss within 1% / 10% / 50% / 100% of
//! the optimal loss" (Section 4.1).  [`ConvergenceTrace`] records the loss
//! after each epoch together with the (real or simulated) time spent, and
//! answers both questions.

/// Loss and cumulative time after one epoch.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LossPoint {
    /// Epoch index (1-based: the loss after the first epoch has `epoch` 1).
    pub epoch: usize,
    /// Objective value at the end of the epoch.
    pub loss: f64,
    /// Cumulative execution time in seconds (real or simulated).
    pub seconds: f64,
}

/// The per-epoch loss curve of one execution.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConvergenceTrace {
    /// Loss of the initial (all-zero) model, before any epoch.
    pub initial_loss: f64,
    /// Per-epoch records in execution order.
    pub points: Vec<LossPoint>,
}

impl ConvergenceTrace {
    /// Start a trace from an initial loss.
    pub fn new(initial_loss: f64) -> Self {
        ConvergenceTrace {
            initial_loss,
            points: Vec::new(),
        }
    }

    /// Record the end of an epoch.
    pub fn record(&mut self, loss: f64, cumulative_seconds: f64) {
        self.points.push(LossPoint {
            epoch: self.points.len() + 1,
            loss,
            seconds: cumulative_seconds,
        });
    }

    /// Lowest loss observed so far (including the initial model).
    pub fn best_loss(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.loss)
            .fold(self.initial_loss, f64::min)
    }

    /// Total number of epochs recorded.
    pub fn epochs(&self) -> usize {
        self.points.len()
    }

    /// Total time of the run.
    pub fn total_seconds(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.seconds)
    }

    /// Number of epochs to reach a loss within `tolerance` (e.g. 0.01 for
    /// "within 1%") of `optimal`, or `None` if never reached.
    pub fn epochs_to_tolerance(&self, optimal: f64, tolerance: f64) -> Option<usize> {
        let threshold = loss_threshold(optimal, tolerance);
        self.points
            .iter()
            .find(|p| p.loss <= threshold)
            .map(|p| p.epoch)
    }

    /// Time (seconds) to reach a loss within `tolerance` of `optimal`.
    pub fn seconds_to_tolerance(&self, optimal: f64, tolerance: f64) -> Option<f64> {
        let threshold = loss_threshold(optimal, tolerance);
        self.points
            .iter()
            .find(|p| p.loss <= threshold)
            .map(|p| p.seconds)
    }
}

/// The loss threshold meaning "within `tolerance` of the optimal loss".
///
/// The paper measures distance multiplicatively: a run is within 1% when its
/// loss is at most `optimal * 1.01` (with an additive epsilon so that an
/// exactly-zero optimum is still reachable).
pub fn loss_threshold(optimal: f64, tolerance: f64) -> f64 {
    optimal * (1.0 + tolerance) + 1e-9
}

/// Epochs to reach each tolerance, over a slice of tolerances.
pub fn epochs_to_reach(
    trace: &ConvergenceTrace,
    optimal: f64,
    tolerances: &[f64],
) -> Vec<Option<usize>> {
    tolerances
        .iter()
        .map(|&t| trace.epochs_to_tolerance(optimal, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ConvergenceTrace {
        let mut t = ConvergenceTrace::new(10.0);
        t.record(5.0, 1.0);
        t.record(2.0, 2.0);
        t.record(1.1, 3.0);
        t.record(1.01, 4.0);
        t.record(1.001, 5.0);
        t
    }

    #[test]
    fn epochs_and_seconds_to_tolerance() {
        let t = trace();
        let optimal = 1.0;
        assert_eq!(t.epochs_to_tolerance(optimal, 1.0), Some(2)); // within 100%
        assert_eq!(t.epochs_to_tolerance(optimal, 0.1), Some(3)); // within 10%
        assert_eq!(t.epochs_to_tolerance(optimal, 0.01), Some(4)); // within 1%
        assert_eq!(t.epochs_to_tolerance(optimal, 0.001), Some(5)); // within 0.1%
        assert_eq!(t.seconds_to_tolerance(optimal, 0.1), Some(3.0));
        assert_eq!(t.epochs_to_tolerance(0.5, 0.01), None);
        assert_eq!(t.seconds_to_tolerance(0.5, 0.01), None);
    }

    #[test]
    fn best_loss_and_totals() {
        let t = trace();
        assert_eq!(t.best_loss(), 1.001);
        assert_eq!(t.epochs(), 5);
        assert_eq!(t.total_seconds(), 5.0);
        let empty = ConvergenceTrace::new(3.0);
        assert_eq!(empty.best_loss(), 3.0);
        assert_eq!(empty.total_seconds(), 0.0);
    }

    #[test]
    fn threshold_handles_zero_optimum() {
        assert!(loss_threshold(0.0, 0.01) > 0.0);
        let mut t = ConvergenceTrace::new(1.0);
        t.record(0.0, 1.0);
        assert_eq!(t.epochs_to_tolerance(0.0, 0.01), Some(1));
    }

    #[test]
    fn epochs_to_reach_vector() {
        let t = trace();
        let result = epochs_to_reach(&t, 1.0, &[1.0, 0.5, 0.1, 0.01]);
        assert_eq!(result, vec![Some(2), Some(3), Some(3), Some(4)]);
    }
}
