//! The immutable task data bundle.
//!
//! Every analytics task in the paper is a pair `(A, x)` of an immutable data
//! matrix and a mutable model.  [`TaskData`] holds the immutable half: the
//! matrix in both CSR (for row-wise access) and CSC (for column-wise and
//! column-to-row access) layouts, per-row labels for supervised tasks, and
//! per-column costs for the graph tasks.  Storing both layouts mirrors the
//! paper's rule that "DimmWitted always stores the dataset in a way that is
//! consistent with the access method" (Appendix A).

use dw_matrix::{CscMatrix, CsrMatrix, MatrixStats};

/// Immutable data for one statistical task.
#[derive(Debug, Clone)]
pub struct TaskData {
    /// Row-major sparse view, used by the row-wise access method.
    pub csr: CsrMatrix,
    /// Column-major sparse view, used by column-wise / column-to-row access.
    pub csc: CscMatrix,
    /// Per-row labels (empty for graph tasks).
    pub labels: Vec<f64>,
    /// Per-column vertex costs (empty for supervised tasks).
    pub costs: Vec<f64>,
}

impl TaskData {
    /// Bundle a matrix with labels and costs.
    ///
    /// # Panics
    /// Panics if a non-empty `labels` does not have one entry per row, or a
    /// non-empty `costs` does not have one entry per column.
    pub fn new(csr: CsrMatrix, labels: Vec<f64>, costs: Vec<f64>) -> Self {
        assert!(
            labels.is_empty() || labels.len() == csr.rows(),
            "labels must have one entry per row"
        );
        assert!(
            costs.is_empty() || costs.len() == csr.cols(),
            "costs must have one entry per column"
        );
        let csc = csr.to_csc();
        TaskData {
            csr,
            csc,
            labels,
            costs,
        }
    }

    /// A supervised task (SVM / LR / LS).
    pub fn supervised(csr: CsrMatrix, labels: Vec<f64>) -> Self {
        Self::new(csr, labels, Vec::new())
    }

    /// A graph task (LP / QP) defined by an edge-incidence matrix and vertex
    /// costs.
    pub fn graph(incidence: CsrMatrix, costs: Vec<f64>) -> Self {
        Self::new(incidence, Vec::new(), costs)
    }

    /// Number of examples `N`.
    pub fn examples(&self) -> usize {
        self.csr.rows()
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.csr.cols()
    }

    /// Shape statistics used by the cost-based optimizer.
    pub fn stats(&self) -> MatrixStats {
        MatrixStats::from_csr(&self.csr)
    }

    /// Restrict to a subset of rows (used by the Sharding strategy for
    /// row-wise access).  Labels follow the selected rows.
    pub fn select_rows(&self, rows: &[usize]) -> TaskData {
        let csr = self.csr.select_rows(rows);
        let labels = if self.labels.is_empty() {
            Vec::new()
        } else {
            rows.iter().map(|&i| self.labels[i]).collect()
        };
        TaskData::new(csr, labels, self.costs.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_matrix::SparseVector;

    fn tiny_matrix() -> CsrMatrix {
        CsrMatrix::from_sparse_rows(
            3,
            &[
                SparseVector::from_parts(vec![0, 1], vec![1.0, 2.0]),
                SparseVector::from_parts(vec![2], vec![3.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn supervised_construction() {
        let t = TaskData::supervised(tiny_matrix(), vec![1.0, -1.0]);
        assert_eq!(t.examples(), 2);
        assert_eq!(t.dim(), 3);
        assert_eq!(t.csc.cols(), 3);
        assert!(t.costs.is_empty());
        assert_eq!(t.stats().nnz, 3);
    }

    #[test]
    fn graph_construction() {
        let t = TaskData::graph(tiny_matrix(), vec![0.1, 0.2, 0.3]);
        assert!(t.labels.is_empty());
        assert_eq!(t.costs.len(), 3);
    }

    #[test]
    #[should_panic(expected = "one entry per row")]
    fn label_length_checked() {
        let _ = TaskData::supervised(tiny_matrix(), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "one entry per column")]
    fn cost_length_checked() {
        let _ = TaskData::graph(tiny_matrix(), vec![0.1]);
    }

    #[test]
    fn select_rows_carries_labels() {
        let t = TaskData::supervised(tiny_matrix(), vec![1.0, -1.0]);
        let sub = t.select_rows(&[1]);
        assert_eq!(sub.examples(), 1);
        assert_eq!(sub.labels, vec![-1.0]);
        assert_eq!(sub.csr.get(0, 2), 3.0);
    }

    #[test]
    fn csr_csc_consistent() {
        let t = TaskData::supervised(tiny_matrix(), vec![1.0, -1.0]);
        for i in 0..t.examples() {
            for j in 0..t.dim() {
                assert_eq!(t.csr.get(i, j), t.csc.get(i, j));
            }
        }
    }
}
