//! The immutable task data bundle.
//!
//! Every analytics task in the paper is a pair `(A, x)` of an immutable data
//! matrix and a mutable model.  [`TaskData`] holds the immutable half: the
//! matrix behind the unified storage layer ([`DataMatrix`]), per-row labels
//! for supervised tasks, and per-column costs for the graph tasks.
//!
//! The matrix follows the paper's rule that "DimmWitted always stores the
//! dataset in a way that is consistent with the access method" (Appendix A):
//! nothing is materialized up front, the planner eagerly builds the layout
//! its chosen access method needs, and any other layout appears lazily only
//! if something actually reads through it.  Objectives reach the data
//! through the row/column view accessors ([`TaskData::row`],
//! [`TaskData::col`]), never through a concrete layout type, so a row-wise
//! task holds exactly one sparse layout in memory.

use dw_matrix::{
    ColAccess, ColView, CscMatrix, CsrMatrix, DataMatrix, KernelSelector, MatrixStats, RowAccess,
    RowView,
};
use std::sync::Arc;

/// Immutable data for one statistical task.
///
/// Labels and costs sit behind `Arc`s so shards can share them: a column
/// shard references the task's full vectors with a reference-count bump (it
/// addresses them by global ids), and every shard shares the one costs
/// vector.  Indexing and iteration read through the `Arc` transparently.
#[derive(Debug, Clone)]
pub struct TaskData {
    /// The data matrix `A` behind the lazy storage layer.
    pub matrix: DataMatrix,
    /// Per-row labels (empty for graph tasks).
    pub labels: Arc<Vec<f64>>,
    /// Per-column vertex costs (empty for supervised tasks).
    pub costs: Arc<Vec<f64>>,
    /// The plan's kernel decision (accumulator width + index encoding),
    /// shared with every shard so one `set` at stream start or replan
    /// switches all readers.  Defaults to the reference kernels over raw
    /// u32 indices, which keep convergence traces bit-identical.
    pub kernel: Arc<KernelSelector>,
}

impl TaskData {
    /// Bundle a matrix with labels and costs.
    ///
    /// Accepts anything convertible into a [`DataMatrix`]: a `CooMatrix`
    /// (nothing materialized), a `CsrMatrix` or `CscMatrix` (that layout
    /// counts as materialized), or a `DataMatrix` handle (shares storage
    /// with the source — cloning a dataset into a task is an `Arc` bump).
    ///
    /// # Panics
    /// Panics if a non-empty `labels` does not have one entry per row, or a
    /// non-empty `costs` does not have one entry per column.
    pub fn new(matrix: impl Into<DataMatrix>, labels: Vec<f64>, costs: Vec<f64>) -> Self {
        let matrix = matrix.into();
        assert!(
            labels.is_empty() || labels.len() == matrix.rows(),
            "labels must have one entry per row"
        );
        assert!(
            costs.is_empty() || costs.len() == matrix.cols(),
            "costs must have one entry per column"
        );
        TaskData {
            matrix,
            labels: Arc::new(labels),
            costs: Arc::new(costs),
            kernel: Arc::new(KernelSelector::new()),
        }
    }

    /// A supervised task (SVM / LR / LS).
    pub fn supervised(matrix: impl Into<DataMatrix>, labels: Vec<f64>) -> Self {
        Self::new(matrix, labels, Vec::new())
    }

    /// A graph task (LP / QP) defined by an edge-incidence matrix and vertex
    /// costs.
    pub fn graph(matrix: impl Into<DataMatrix>, costs: Vec<f64>) -> Self {
        Self::new(matrix, Vec::new(), costs)
    }

    /// Number of examples `N`.
    pub fn examples(&self) -> usize {
        self.matrix.rows()
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.matrix.cols()
    }

    /// Shape statistics used by the cost-based optimizer.
    ///
    /// Computed from the canonical form — calling this never materializes a
    /// layout, which is what lets the planner decide *before* storage exists.
    pub fn stats(&self) -> MatrixStats {
        self.matrix.stats().clone()
    }

    /// Borrowed view of example row `i` (materializes the row layout on
    /// first use).
    ///
    /// On a **column shard** ([`TaskData::col_range`]) rows are served from
    /// the shared base matrix: a column shard restricts only the column
    /// axis, while column-to-row updates expand the row set `S(j)` through
    /// *full* rows (footnote 2) — so row reads stay bit-identical to the
    /// unsharded task.
    #[inline]
    pub fn row(&self, i: usize) -> RowView<'_> {
        if let Some(base) = self.matrix.col_window_base() {
            return base.row(i);
        }
        self.matrix.row(i)
    }

    /// Dot-product of example row `i` with a dense model slice, routed
    /// through the task's [`KernelSelector`]: the plan's accumulator width
    /// and index encoding apply without the caller naming either.  Under the
    /// default reference/u32 decision this is bit-identical to
    /// `self.row(i).dot(model)`.
    #[inline]
    pub fn row_dot(&self, i: usize, model: &[f64]) -> f64 {
        let variant = self.kernel.variant();
        let encoding = self.kernel.encoding();
        if let Some(base) = self.matrix.col_window_base() {
            return base.row_dot_with(i, model, variant, encoding);
        }
        self.matrix.row_dot_with(i, model, variant, encoding)
    }

    /// Borrowed view of coordinate column `j` (materializes the column
    /// layout on first use).
    ///
    /// Columnar items are **model coordinates**, which are global by
    /// nature: on a column shard `j` stays the global coordinate id and the
    /// shard translates it into its zero-copy window (panicking if the
    /// shard does not own it), so `data.col(j)`, `data.costs[j]`, and
    /// `model.read(j)` all agree inside an update function.
    #[inline]
    pub fn col(&self, j: usize) -> ColView<'_> {
        self.matrix.col(self.shard_col_index(j))
    }

    /// Number of stored entries in column `j` — the degree of vertex `j`
    /// for the graph tasks.  Global-coordinate semantics on a column shard,
    /// exactly as [`TaskData::col`].
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.matrix.col_nnz(self.shard_col_index(j))
    }

    /// Translate a global coordinate id into this task's column storage:
    /// the identity for unsharded tasks, the window-local index for a
    /// column shard (panicking if the shard does not own the coordinate).
    #[inline]
    fn shard_col_index(&self, j: usize) -> usize {
        match self.matrix.col_window() {
            Some((start, end)) => {
                assert!(
                    (start..end).contains(&j),
                    "column {j} outside shard window {start}..{end}"
                );
                j - start
            }
            None => j,
        }
    }

    /// The concrete row-major layout (materialized on first use).
    pub fn csr(&self) -> &CsrMatrix {
        self.matrix.csr()
    }

    /// The concrete column-major layout (materialized on first use).
    pub fn csc(&self) -> &CscMatrix {
        self.matrix.csc()
    }

    /// Restrict to the contiguous row range `start..end` as a **zero-copy**
    /// shard: the matrix is a [`dw_matrix::RowRangeView`] window into this
    /// task's shared row layout (no element bytes are duplicated), and the
    /// labels follow the range.  This is what NUMA row sharding cuts.
    pub fn row_range(&self, start: usize, end: usize) -> TaskData {
        let matrix = self.matrix.row_range(start, end);
        let labels = if self.labels.is_empty() {
            Vec::new()
        } else {
            self.labels[start..end].to_vec()
        };
        TaskData {
            matrix,
            labels: Arc::new(labels),
            costs: Arc::clone(&self.costs),
            kernel: Arc::clone(&self.kernel),
        }
    }

    /// Restrict to the contiguous column range `start..end` as a
    /// **zero-copy** shard — the columnar mirror of [`TaskData::row_range`]:
    /// the matrix is a [`dw_matrix::ColRangeView`] window into this task's
    /// shared CSC (no element bytes are duplicated).
    ///
    /// Unlike a row shard, a column shard keeps the **full** labels *and*
    /// costs — shared with the base task by `Arc`, no copies — and its
    /// accessors keep global ids: columnar update functions address the
    /// model, the costs, and the rows in `S(j)` by global coordinate / row
    /// id, so only the column window itself is sliced.  [`TaskData::col`]
    /// translates a global coordinate into the window and [`TaskData::row`]
    /// reads full rows through the shared base, which is what keeps sharded
    /// columnar execution bit-identical to the unsharded run.
    pub fn col_range(&self, start: usize, end: usize) -> TaskData {
        TaskData {
            matrix: self.matrix.col_range(start, end),
            labels: Arc::clone(&self.labels),
            costs: Arc::clone(&self.costs),
            kernel: Arc::clone(&self.kernel),
        }
    }

    /// Restrict to a subset of rows (used where a shard must carry
    /// reordered rows; prefer [`TaskData::row_range`] for contiguous
    /// shards, which copies nothing).  Labels follow the selected rows; the
    /// shard's matrix holds only the row layout.
    pub fn select_rows(&self, rows: &[usize]) -> TaskData {
        let matrix = self.matrix.select_rows(rows);
        let labels = if self.labels.is_empty() {
            Vec::new()
        } else {
            rows.iter().map(|&i| self.labels[i]).collect()
        };
        TaskData {
            matrix,
            labels: Arc::new(labels),
            costs: Arc::clone(&self.costs),
            kernel: Arc::clone(&self.kernel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_matrix::{CooMatrix, SparseVector};

    fn tiny_matrix() -> CsrMatrix {
        CsrMatrix::from_sparse_rows(
            3,
            &[
                SparseVector::from_parts(vec![0, 1], vec![1.0, 2.0]),
                SparseVector::from_parts(vec![2], vec![3.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn supervised_construction() {
        let t = TaskData::supervised(tiny_matrix(), vec![1.0, -1.0]);
        assert_eq!(t.examples(), 2);
        assert_eq!(t.dim(), 3);
        assert_eq!(t.csc().cols(), 3);
        assert!(t.costs.is_empty());
        assert_eq!(t.stats().nnz, 3);
    }

    #[test]
    fn coo_construction_defers_materialization() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 2, -1.0).unwrap();
        let t = TaskData::supervised(coo, vec![1.0, -1.0]);
        assert_eq!(t.stats().nnz, 2);
        assert!(!t.matrix.csr_materialized());
        assert!(!t.matrix.csc_materialized());
        // Row traffic builds exactly the row layout.
        assert_eq!(t.row(0).nnz(), 1);
        assert!(t.matrix.csr_materialized());
        assert!(!t.matrix.csc_materialized());
    }

    #[test]
    fn graph_construction() {
        let t = TaskData::graph(tiny_matrix(), vec![0.1, 0.2, 0.3]);
        assert!(t.labels.is_empty());
        assert_eq!(t.costs.len(), 3);
        assert_eq!(t.col_nnz(2), 1);
    }

    #[test]
    #[should_panic(expected = "one entry per row")]
    fn label_length_checked() {
        let _ = TaskData::supervised(tiny_matrix(), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "one entry per column")]
    fn cost_length_checked() {
        let _ = TaskData::graph(tiny_matrix(), vec![0.1]);
    }

    #[test]
    fn select_rows_carries_labels() {
        let t = TaskData::supervised(tiny_matrix(), vec![1.0, -1.0]);
        let sub = t.select_rows(&[1]);
        assert_eq!(sub.examples(), 1);
        assert_eq!(*sub.labels, vec![-1.0]);
        assert_eq!(sub.csr().get(0, 2), 3.0);
        assert!(!sub.matrix.csc_materialized());
    }

    #[test]
    fn row_range_shard_shares_storage_and_labels() {
        let t = TaskData::supervised(tiny_matrix(), vec![1.0, -1.0]);
        let shard = t.row_range(1, 2);
        assert_eq!(shard.examples(), 1);
        assert_eq!(*shard.labels, vec![-1.0]);
        assert_eq!(shard.matrix.resident_bytes(), 0, "zero-copy window");
        let a = shard.row(0);
        let b = t.row(1);
        assert!(std::ptr::eq(a.indices, b.indices));
        assert!(std::ptr::eq(a.values, b.values));
    }

    #[test]
    fn col_range_shard_keeps_global_ids_and_shares_storage() {
        let t = TaskData::graph(tiny_matrix(), vec![0.1, 0.2, 0.3]);
        let shard = t.col_range(1, 3);
        // Zero-copy window over the shared CSC.
        assert_eq!(shard.matrix.resident_bytes(), 0);
        assert_eq!(shard.matrix.col_window(), Some((1, 3)));
        // Global-coordinate semantics: the shard answers for the columns it
        // owns, under their global ids, with the base's exact slices.
        for j in 1..3 {
            let a = shard.col(j);
            let b = t.col(j);
            assert!(std::ptr::eq(a.indices, b.indices), "col {j}");
            assert!(std::ptr::eq(a.values, b.values), "col {j}");
            assert_eq!(shard.col_nnz(j), t.col_nnz(j), "col {j}");
        }
        // Costs and labels stay full, addressed by global ids.
        assert_eq!(shard.costs, t.costs);
        assert_eq!(shard.examples(), t.examples());
        // Rows are served from the shared base, unrestricted.
        for i in 0..t.examples() {
            let a = shard.row(i);
            let b = t.row(i);
            assert_eq!(a.indices, b.indices, "row {i}");
            assert_eq!(a.values, b.values, "row {i}");
        }
    }

    #[test]
    #[should_panic(expected = "outside shard window")]
    fn col_range_shard_rejects_unowned_columns() {
        let t = TaskData::graph(tiny_matrix(), vec![0.1, 0.2, 0.3]);
        let shard = t.col_range(1, 3);
        let _ = shard.col(0);
    }

    #[test]
    fn csr_csc_consistent() {
        let t = TaskData::supervised(tiny_matrix(), vec![1.0, -1.0]);
        for i in 0..t.examples() {
            for j in 0..t.dim() {
                assert_eq!(t.csr().get(i, j), t.csc().get(i, j));
            }
        }
    }
}
