//! First-order statistical methods for the DimmWitted engine.
//!
//! The paper studies tasks "that can be solved by first-order methods — a
//! class of iterative algorithms that use gradient information".  This crate
//! implements the five statistical models of the evaluation (SVM, logistic
//! regression, least squares, LP, QP) as [`Objective`]s with both a row-wise
//! (`f_row`, SGD-style) and a column-to-row (`f_col`/`f_ctr`, SCD-style)
//! update, together with:
//!
//! * [`ModelAccess`] / [`AtomicModel`] — the mutable model abstraction.  The
//!   atomic implementation is the Hogwild! memory model: individual
//!   components are updated atomically (cacheline atomicity) but the vector
//!   as a whole is not locked, so concurrent workers may interleave and
//!   overwrite freely — exactly the incoherent execution of Section 2.1.
//! * [`TaskData`] — the immutable `(A, labels, costs)` bundle.
//! * [`epoch`] — sequential row-wise and column-wise epoch runners.
//! * [`reference`] — long-run reference solver used to estimate the optimal
//!   loss (the paper obtains it by "running all systems for one hour and
//!   choosing the lowest").
//! * [`convergence`] — bookkeeping for "epochs to reach x% of the optimal
//!   loss", the paper's statistical-efficiency metric.

pub mod convergence;
pub mod epoch;
pub mod model;
pub mod objectives;
pub mod reference;
pub mod task;

pub use convergence::{epochs_to_reach, ConvergenceTrace, LossPoint};
pub use epoch::{run_col_epoch, run_row_epoch, shuffled_indices};
pub use model::{average_models, AtomicModel, ModelAccess};
pub use objectives::{
    GraphLp, GraphQp, LeastSquares, Logistic, Objective, SvmHinge, UpdateDensity,
};
pub use reference::reference_optimum;
pub use task::TaskData;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_api_smoke() {
        let model = AtomicModel::zeros(4);
        model.add(1, 2.5);
        assert_eq!(model.read(1), 2.5);
        assert_eq!(model.snapshot(), vec![0.0, 2.5, 0.0, 0.0]);
    }
}
