//! Sequential epoch runners.
//!
//! An *epoch* is one complete pass over the data (Section 1).  The engine
//! composes these per-worker loops into parallel execution plans; they are
//! also used stand-alone by the reference solver and the baselines.

use crate::model::ModelAccess;
use crate::objectives::Objective;
use crate::task::TaskData;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A shuffled permutation of `0..n` ("typically some randomness in the
/// ordering is desired", Section 2.1).
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    indices
}

/// Run one row-wise epoch over the listed examples.
pub fn run_row_epoch(
    objective: &dyn Objective,
    data: &TaskData,
    model: &dyn ModelAccess,
    step: f64,
    order: &[usize],
) {
    for &i in order {
        objective.row_step(data, i, model, step);
    }
}

/// Run one column-wise epoch over the listed coordinates.
pub fn run_col_epoch(
    objective: &dyn Objective,
    data: &TaskData,
    model: &dyn ModelAccess,
    step: f64,
    order: &[usize],
) {
    for &j in order {
        objective.col_step(data, j, model, step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AtomicModel;
    use crate::objectives::{test_support, LeastSquares, SvmHinge};

    #[test]
    fn shuffle_is_a_permutation_and_seeded() {
        let a = shuffled_indices(100, 7);
        let b = shuffled_indices(100, 7);
        let c = shuffled_indices(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn row_epoch_reduces_loss() {
        let data = test_support::tiny_classification();
        let obj = SvmHinge::default();
        let model = AtomicModel::zeros(data.dim());
        let order = shuffled_indices(data.examples(), 1);
        let start = obj.full_loss(&data, &model.snapshot());
        for _ in 0..20 {
            run_row_epoch(&obj, &data, &model, 0.1, &order);
        }
        assert!(obj.full_loss(&data, &model.snapshot()) < start);
    }

    #[test]
    fn col_epoch_reduces_loss() {
        let data = test_support::tiny_regression();
        let obj = LeastSquares::new(0.0);
        let model = AtomicModel::zeros(data.dim());
        let order: Vec<usize> = (0..data.dim()).collect();
        let start = obj.full_loss(&data, &model.snapshot());
        for _ in 0..10 {
            run_col_epoch(&obj, &data, &model, 1.0, &order);
        }
        assert!(obj.full_loss(&data, &model.snapshot()) < 0.1 * start);
    }

    #[test]
    fn partial_order_visits_only_listed_rows() {
        let data = test_support::tiny_classification();
        let obj = SvmHinge::default();
        let model = AtomicModel::zeros(data.dim());
        // Row 1 touches coordinates 0 and 2; nothing else should change.
        run_row_epoch(&obj, &data, &model, 0.1, &[1]);
        assert_ne!(model.read(0), 0.0);
        assert_eq!(model.read(1), 0.0);
    }
}
