//! Per-session serving statistics.
//!
//! Everything here is updated from hot paths — trainer threads after each
//! epoch, front-end workers after each batch — so counters are atomics and
//! the latency reservoir is the only lock (taken once per *batch*, not per
//! prediction).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Cap on retained latency samples; enough for a stable p99 without
/// unbounded growth on long-lived sessions.
const LATENCY_SAMPLES: usize = 1 << 16;

/// Live counters of one admitted session.
#[derive(Debug)]
pub struct SessionStats {
    started: Instant,
    epochs: AtomicUsize,
    predictions: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl Default for SessionStats {
    fn default() -> Self {
        SessionStats::new()
    }
}

impl SessionStats {
    /// Fresh counters, clock started now (admission time).
    pub fn new() -> Self {
        SessionStats {
            started: Instant::now(),
            epochs: AtomicUsize::new(0),
            predictions: AtomicU64::new(0),
            latencies_us: Mutex::new(Vec::new()),
        }
    }

    /// One training epoch completed.
    pub fn record_epoch(&self) {
        self.epochs.fetch_add(1, Ordering::Relaxed);
    }

    /// A batch of predictions completed, each with its queue-to-reply
    /// latency.
    pub fn record_predictions(&self, latencies: &[Duration]) {
        self.predictions
            .fetch_add(latencies.len() as u64, Ordering::Relaxed);
        let mut reservoir = self.latencies_us.lock().expect("latency lock poisoned");
        for latency in latencies {
            if reservoir.len() >= LATENCY_SAMPLES {
                return;
            }
            reservoir.push(latency.as_micros() as u64);
        }
    }

    /// Epochs completed so far.
    pub fn epochs(&self) -> usize {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Predictions served so far.
    pub fn predictions(&self) -> u64 {
        self.predictions.load(Ordering::Relaxed)
    }

    /// Summarize against the snapshot state (`snapshot_epoch` is the epoch
    /// of the currently published snapshot; staleness is how many epochs
    /// training has advanced past it — 0 when publication keeps up).
    pub fn report(&self, snapshot_epoch: usize, snapshot_version: u64) -> StatsReport {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let epochs = self.epochs();
        let predictions = self.predictions();
        let mut samples = self
            .latencies_us
            .lock()
            .expect("latency lock poisoned")
            .clone();
        samples.sort_unstable();
        StatsReport {
            epochs,
            epochs_per_sec: epochs as f64 / elapsed,
            predictions,
            predictions_per_sec: predictions as f64 / elapsed,
            snapshot_version,
            snapshot_epoch,
            staleness_epochs: epochs.saturating_sub(snapshot_epoch),
            p50_latency_us: percentile(&samples, 0.50),
            p99_latency_us: percentile(&samples, 0.99),
        }
    }
}

/// Nearest-rank percentile of an already-sorted sample (0 when empty).
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A point-in-time summary of one session's serving behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Training epochs completed.
    pub epochs: usize,
    /// Training epochs per wall-clock second since admission.
    pub epochs_per_sec: f64,
    /// Predictions served.
    pub predictions: u64,
    /// Predictions per wall-clock second since admission.
    pub predictions_per_sec: f64,
    /// Version of the currently published snapshot (0 before the first).
    pub snapshot_version: u64,
    /// Epoch of the currently published snapshot.
    pub snapshot_epoch: usize,
    /// Epochs training has advanced past the published snapshot.
    pub staleness_epochs: usize,
    /// Median prediction latency in microseconds (0 with no samples).
    pub p50_latency_us: u64,
    /// 99th-percentile prediction latency in microseconds.
    pub p99_latency_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 0.50), 50);
        assert_eq!(percentile(&samples, 0.99), 99);
        assert_eq!(percentile(&samples, 1.0), 100);
        assert_eq!(percentile(&[42], 0.99), 42);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn reports_accumulate_and_measure_staleness() {
        let stats = SessionStats::new();
        for _ in 0..5 {
            stats.record_epoch();
        }
        stats.record_predictions(&[Duration::from_micros(10), Duration::from_micros(30)]);
        let report = stats.report(3, 7);
        assert_eq!(report.epochs, 5);
        assert_eq!(report.predictions, 2);
        assert_eq!(report.snapshot_version, 7);
        assert_eq!(report.staleness_epochs, 2, "5 trained, snapshot at 3");
        assert_eq!(report.p50_latency_us, 10);
        assert_eq!(report.p99_latency_us, 30);
        assert!(report.epochs_per_sec > 0.0);
        assert!(report.predictions_per_sec > 0.0);
    }
}
