//! Versioned, lock-free model snapshots.
//!
//! Training mutates model replicas continuously (Hogwild!-style for
//! PerMachine plans), so a prediction path must never read the live model:
//! it would observe a torn, mid-epoch state.  Instead, the epoch boundary —
//! the one point where every strategy synchronizes and the loss is measured
//! — publishes an immutable [`ModelSnapshot`] into a [`SnapshotCell`], and
//! predictors read whichever snapshot is current without taking any lock.
//!
//! The cell is the `arc-swap` idea rebuilt on `std` atomics (crates.io is
//! offline for this workspace): a small ring of slots, each an
//! `Arc<ModelSnapshot>` guarded by a pin count.  **Readers are lock-free**:
//! a load is `fetch_add` (pin) → clone the `Arc` → `fetch_sub` (unpin), and
//! only retries if it pinned the one slot a writer claimed at that instant.
//! Writers (one per training session, once per epoch) serialize among
//! themselves on a mutex that no reader ever touches, claim a *non-current*
//! slot whose pin count is zero, install the new `Arc`, and swing the
//! `current` index.  A pinned slot is never written, and a claimed slot is
//! never read, so no reader can observe a snapshot mid-replacement.
//!
//! Every snapshot carries an FNV-1a checksum over its model bits, stamped
//! at publication.  The torn-read stress test recomputes it on every read:
//! any rip — a half-written vector, a version/payload mismatch — changes
//! the checksum.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Snapshot ring size.  Publication claims any free non-current slot, so
/// with momentary reader pins, three alternatives always yield one quickly.
const SLOTS: usize = 4;

/// High bit of a slot's pin word: set while a writer owns the slot.
const WRITER: usize = usize::MAX ^ (usize::MAX >> 1);

/// An immutable, versioned copy of a model at an epoch boundary.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// Publication sequence number within the owning cell (1-based).
    pub version: u64,
    /// Training epoch the model had completed when published.
    pub epoch: usize,
    /// Full-dataset loss of exactly this model.
    pub loss: f64,
    /// Wall-clock training time when published ([`EpochEvent::elapsed`]).
    ///
    /// [`EpochEvent::elapsed`]: dimmwitted::EpochEvent::elapsed
    pub elapsed: Duration,
    model: Vec<f64>,
    checksum: u64,
}

/// FNV-1a over the snapshot's identity and every model bit: any torn state
/// (half-old half-new vector, version/payload mismatch) changes it.
fn stamp(version: u64, epoch: usize, model: &[f64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(version);
    eat(epoch as u64);
    for value in model {
        eat(value.to_bits());
    }
    hash
}

impl ModelSnapshot {
    /// Seal `model` into a checksummed snapshot.
    pub fn new(version: u64, epoch: usize, loss: f64, elapsed: Duration, model: Vec<f64>) -> Self {
        let checksum = stamp(version, epoch, &model);
        ModelSnapshot {
            version,
            epoch,
            loss,
            elapsed,
            model,
            checksum,
        }
    }

    /// The immutable model vector.
    pub fn model(&self) -> &[f64] {
        &self.model
    }

    /// The checksum stamped at publication.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recompute the checksum and compare — `false` would mean a torn read.
    pub fn is_consistent(&self) -> bool {
        stamp(self.version, self.epoch, &self.model) == self.checksum
    }
}

struct Slot {
    /// Reader pin count, with [`WRITER`] set while a publisher owns it.
    pins: AtomicUsize,
    value: UnsafeCell<Option<Arc<ModelSnapshot>>>,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            pins: AtomicUsize::new(0),
            value: UnsafeCell::new(None),
        }
    }
}

/// A lock-free publication point: one writer stream (the training session,
/// once per epoch), any number of concurrent readers.
pub struct SnapshotCell {
    slots: [Slot; SLOTS],
    /// Index of the slot holding the latest snapshot.
    current: AtomicUsize,
    latest_version: AtomicU64,
    latest_epoch: AtomicUsize,
    /// Serializes publishers only; never touched by the read path.
    publisher: Mutex<()>,
}

// SAFETY: the `UnsafeCell`s are governed by the pin protocol — a slot's
// value is only written while its pin word is exactly `WRITER` (readers
// excluded) and only read while the reader holds a pin and `WRITER` is
// clear (writers excluded).  All index/version words are atomics.
unsafe impl Send for SnapshotCell {}
unsafe impl Sync for SnapshotCell {}

impl Default for SnapshotCell {
    fn default() -> Self {
        SnapshotCell::new()
    }
}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("version", &self.version())
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl SnapshotCell {
    /// An empty cell; [`SnapshotCell::load`] returns `None` until the first
    /// [`SnapshotCell::publish`].
    pub fn new() -> Self {
        SnapshotCell {
            slots: [Slot::empty(), Slot::empty(), Slot::empty(), Slot::empty()],
            current: AtomicUsize::new(0),
            latest_version: AtomicU64::new(0),
            latest_epoch: AtomicUsize::new(0),
            publisher: Mutex::new(()),
        }
    }

    /// The current snapshot, or `None` before the first publication.
    ///
    /// Lock-free: pin the current slot, clone its `Arc`, unpin.  The only
    /// retry is pinning the exact slot a publisher claimed at that instant
    /// (it backs off to the *new* current, so two iterations suffice in
    /// practice).
    pub fn load(&self) -> Option<Arc<ModelSnapshot>> {
        loop {
            let index = self.current.load(Ordering::Acquire);
            let slot = &self.slots[index];
            let pins = slot.pins.fetch_add(1, Ordering::Acquire);
            if pins & WRITER != 0 {
                // A publisher owns this slot right now; undo and retry on
                // the (already swung or about to swing) current index.
                slot.pins.fetch_sub(1, Ordering::Release);
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: we hold a pin and WRITER is clear, so no publisher
            // can claim (claiming CASes the pin word from 0) or mutate the
            // slot until we unpin.
            let value = unsafe { (*slot.value.get()).clone() };
            slot.pins.fetch_sub(1, Ordering::Release);
            return value;
        }
    }

    /// Publish a new snapshot, returning its version (1-based).
    ///
    /// Concurrent publishers (one per training session sharing a cell is
    /// not the intended shape, but is safe) serialize on the publisher
    /// mutex; readers are never blocked, only briefly diverted off the one
    /// slot being replaced.
    pub fn publish(&self, epoch: usize, loss: f64, elapsed: Duration, model: Vec<f64>) -> u64 {
        let _guard = self.publisher.lock().expect("snapshot publisher poisoned");
        let version = self.latest_version.load(Ordering::Relaxed) + 1;
        let snapshot = Arc::new(ModelSnapshot::new(version, epoch, loss, elapsed, model));
        let current = self.current.load(Ordering::Relaxed);
        let mut offset = 1;
        loop {
            let index = (current + offset) % SLOTS;
            if index != current
                && self.slots[index]
                    .pins
                    .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                // SAFETY: the CAS from 0 means no reader holds a pin, and
                // WRITER keeps new readers off until cleared below.
                unsafe {
                    *self.slots[index].value.get() = Some(snapshot);
                }
                self.current.store(index, Ordering::Release);
                self.latest_version.store(version, Ordering::Release);
                self.latest_epoch.store(epoch, Ordering::Release);
                self.slots[index].pins.fetch_sub(WRITER, Ordering::Release);
                return version;
            }
            // Slot pinned by in-flight readers — try the next alternative.
            // Pins last for one Arc clone, so a free slot appears quickly.
            offset = if offset >= SLOTS - 1 { 1 } else { offset + 1 };
            std::hint::spin_loop();
        }
    }

    /// Latest published version (0 before the first publication).
    pub fn version(&self) -> u64 {
        self.latest_version.load(Ordering::Acquire)
    }

    /// Epoch of the latest published snapshot.
    pub fn epoch(&self) -> usize {
        self.latest_epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn empty_cell_loads_none_then_latest_wins() {
        let cell = SnapshotCell::new();
        assert!(cell.load().is_none());
        assert_eq!(cell.version(), 0);
        for epoch in 1..=10 {
            let v = cell.publish(
                epoch,
                1.0 / epoch as f64,
                Duration::from_millis(epoch as u64),
                vec![epoch as f64; 8],
            );
            assert_eq!(v, epoch as u64);
            let snap = cell.load().expect("published");
            assert_eq!(snap.version, epoch as u64);
            assert_eq!(snap.epoch, epoch);
            assert_eq!(snap.model(), &vec![epoch as f64; 8][..]);
            assert!(snap.is_consistent());
        }
        assert_eq!(cell.version(), 10);
        assert_eq!(cell.epoch(), 10);
    }

    #[test]
    fn checksum_detects_any_rip() {
        let good = ModelSnapshot::new(3, 7, 0.5, Duration::ZERO, vec![1.0, 2.0, 3.0]);
        assert!(good.is_consistent());
        // A snapshot assembled from mismatched pieces fails the check.
        let mut torn = good.clone();
        torn.model[1] = 99.0;
        assert!(!torn.is_consistent());
        let mut relabeled = good.clone();
        relabeled.version = 4;
        assert!(!relabeled.is_consistent());
        let mut wrong_epoch = good;
        wrong_epoch.epoch = 8;
        assert!(!wrong_epoch.is_consistent());
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_snapshot() {
        // One publisher hammering versions against many readers; every read
        // must be internally consistent and versions must never regress
        // within a reader (monotonic staleness).
        let cell = Arc::new(SnapshotCell::new());
        cell.publish(0, 1.0, Duration::ZERO, vec![0.0; 64]);
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last_version = 0;
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load().expect("always published");
                        assert!(snap.is_consistent(), "torn read at v{}", snap.version);
                        // The whole vector must belong to one version.
                        let expected = snap.epoch as f64;
                        assert!(snap.model().iter().all(|&v| v == expected));
                        assert!(
                            snap.version >= last_version,
                            "version went backwards: {} after {}",
                            snap.version,
                            last_version
                        );
                        last_version = snap.version;
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        for epoch in 1..=2000usize {
            cell.publish(
                epoch,
                1.0 / epoch as f64,
                Duration::ZERO,
                vec![epoch as f64; 64],
            );
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers made progress");
        assert_eq!(cell.version(), 2001, "initial publication plus 2000");
    }
}
