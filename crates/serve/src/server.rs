//! The request front-end: an in-process prediction queue with batching.
//!
//! A serving deployment does not call [`Predictor::predict`] inline — it
//! queues requests and lets dedicated workers drain them, because draining
//! is where batching happens: a worker pops a run of requests bound for the
//! same session and scores them against **one** snapshot load, so queueing
//! pressure amortizes the read path instead of multiplying it.  This is the
//! in-process analogue of a network front door (no external deps; the
//! workspace is offline), shaped so a socket listener could feed the same
//! queue.
//!
//! Request latency is measured enqueue→reply and recorded into the owning
//! session's [`SessionStats`], so `predictions/s`, p50 and p99 land in the
//! same [`StatsReport`](crate::stats::StatsReport) as the training-side
//! counters.
//!
//! [`SessionStats`]: crate::stats::SessionStats

use crate::registry::SessionHandle;
use crate::snapshot::SnapshotCell;
use crate::stats::SessionStats;
use dw_matrix::SparseVector;
use dw_optim::Objective;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A completed prediction, as delivered to the requester.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictReply {
    /// The objective's score against the snapshot used.
    pub score: f64,
    /// Snapshot version the batch was scored against (0 if none was
    /// published yet — then `score` is NaN).
    pub version: u64,
    /// Training epoch of that snapshot.
    pub epoch: usize,
    /// Enqueue-to-reply latency.
    pub latency: Duration,
}

/// The requester's end of one queued prediction.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<PredictReply>,
}

impl Ticket {
    /// Block until the front-end replies.
    pub fn wait(self) -> PredictReply {
        self.rx.recv().expect("front-end dropped the request")
    }
}

/// One queued request.
struct QueuedRequest {
    session: u64,
    cell: Arc<SnapshotCell>,
    objective: Arc<dyn Objective>,
    stats: Arc<SessionStats>,
    input: SparseVector,
    enqueued: Instant,
    reply: Sender<PredictReply>,
}

struct FrontendCore {
    queue: Mutex<VecDeque<QueuedRequest>>,
    available: Condvar,
    stop: AtomicBool,
    max_batch: usize,
    /// Drained batches and requests, for observing amortization.
    batches: AtomicU64,
    requests: AtomicU64,
}

/// The in-process request front door.
pub struct Frontend {
    core: Arc<FrontendCore>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frontend")
            .field("workers", &self.workers.len())
            .field("max_batch", &self.core.max_batch)
            .field("batches", &self.batches())
            .field("requests", &self.requests())
            .finish()
    }
}

impl Frontend {
    /// Spawn `workers` drain threads batching up to `max_batch` same-session
    /// requests per snapshot load.
    pub fn new(workers: usize, max_batch: usize) -> Self {
        let core = Arc::new(FrontendCore {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            max_batch: max_batch.max(1),
            batches: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|w| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("dw-frontend-{w}"))
                    .spawn(move || drain_loop(&core))
                    .expect("failed to spawn front-end worker")
            })
            .collect();
        Frontend { core, workers }
    }

    /// Queue one prediction against `session`'s current snapshot.
    pub fn submit(&self, session: &SessionHandle, input: SparseVector) -> Ticket {
        let (tx, rx) = channel();
        let request = QueuedRequest {
            session: session.id(),
            cell: session.snapshot_cell(),
            objective: session.objective(),
            stats: session.stats_sink(),
            input,
            enqueued: Instant::now(),
            reply: tx,
        };
        {
            let mut queue = self.core.queue.lock().expect("front-end queue poisoned");
            queue.push_back(request);
        }
        self.core.available.notify_one();
        Ticket { rx }
    }

    /// Queue a whole batch (one ticket per input, in order).
    pub fn submit_batch(&self, session: &SessionHandle, inputs: Vec<SparseVector>) -> Vec<Ticket> {
        let tickets = inputs
            .into_iter()
            .map(|input| self.submit(session, input))
            .collect();
        self.core.available.notify_all();
        tickets
    }

    /// Batches drained so far (for observing amortization: `requests() /
    /// batches()` is the mean batch size).
    pub fn batches(&self) -> u64 {
        self.core.batches.load(Ordering::Relaxed)
    }

    /// Requests drained so far.
    pub fn requests(&self) -> u64 {
        self.core.requests.load(Ordering::Relaxed)
    }

    /// Drain outstanding requests and join the workers.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        self.core.stop.store(true, Ordering::Release);
        self.core.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Pop the head request plus up to `max_batch - 1` more *for the same
/// session* (preserving queue order of everything else).
fn take_batch(queue: &mut VecDeque<QueuedRequest>, max_batch: usize) -> Vec<QueuedRequest> {
    let mut batch = Vec::new();
    let Some(head) = queue.pop_front() else {
        return batch;
    };
    let session = head.session;
    batch.push(head);
    let mut index = 0;
    while batch.len() < max_batch && index < queue.len() {
        if queue[index].session == session {
            batch.push(queue.remove(index).expect("index in bounds"));
        } else {
            index += 1;
        }
    }
    batch
}

fn drain_loop(core: &FrontendCore) {
    loop {
        let batch = {
            let mut queue = core.queue.lock().expect("front-end queue poisoned");
            while queue.is_empty() {
                if core.stop.load(Ordering::Acquire) {
                    return;
                }
                queue = core
                    .available
                    .wait_timeout(queue, Duration::from_millis(1))
                    .expect("front-end queue poisoned")
                    .0;
            }
            take_batch(&mut queue, core.max_batch)
        };
        if batch.is_empty() {
            continue;
        }
        core.batches.fetch_add(1, Ordering::Relaxed);
        core.requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        // One snapshot load serves the whole batch — the amortization the
        // queue exists for.  All requests in a batch share one session, so
        // cell/objective/stats are the same Arcs.
        let snapshot = batch[0].cell.load();
        let stats = Arc::clone(&batch[0].stats);
        let mut latencies = Vec::with_capacity(batch.len());
        let mut replies = Vec::with_capacity(batch.len());
        for request in batch {
            let (score, version, epoch) = match &snapshot {
                Some(snap) => (
                    request.objective.score(&request.input, snap.model()),
                    snap.version,
                    snap.epoch,
                ),
                None => (f64::NAN, 0, 0),
            };
            let latency = request.enqueued.elapsed();
            latencies.push(latency);
            replies.push((
                request.reply,
                PredictReply {
                    score,
                    version,
                    epoch,
                    latency,
                },
            ));
        }
        // Record before replying: a caller who has seen every ticket resolve
        // must also see every one of those predictions in the stats.
        stats.record_predictions(&latencies);
        for (reply, message) in replies {
            let _ = reply.send(message);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_batch_groups_one_session_and_preserves_others() {
        let (tx, _rx) = channel();
        let cell = Arc::new(SnapshotCell::new());
        let stats = Arc::new(SessionStats::new());
        let objective: Arc<dyn Objective> = Arc::new(dw_optim::SvmHinge::default());
        let mut queue: VecDeque<QueuedRequest> = [0u64, 1, 0, 0, 1, 0]
            .iter()
            .map(|&session| QueuedRequest {
                session,
                cell: Arc::clone(&cell),
                objective: Arc::clone(&objective),
                stats: Arc::clone(&stats),
                input: SparseVector::new(),
                enqueued: Instant::now(),
                reply: tx.clone(),
            })
            .collect();
        let batch = take_batch(&mut queue, 3);
        assert_eq!(batch.len(), 3, "head session 0 batched up to the cap");
        assert!(batch.iter().all(|r| r.session == 0));
        assert_eq!(
            queue.iter().map(|r| r.session).collect::<Vec<_>>(),
            vec![1, 1, 0],
            "other sessions keep their order; the overflow request waits"
        );
        let rest = take_batch(&mut queue, 3);
        assert_eq!(rest.len(), 2);
        assert!(rest.iter().all(|r| r.session == 1));
    }

    #[test]
    fn empty_queue_yields_empty_batch() {
        let mut queue = VecDeque::new();
        assert!(take_batch(&mut queue, 4).is_empty());
    }
}
