//! The read path: scoring inputs against published snapshots.

use crate::snapshot::{ModelSnapshot, SnapshotCell};
use dw_matrix::SparseVector;
use dw_optim::Objective;
use std::sync::Arc;

/// One scored input, tagged with the snapshot it was scored against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The objective's [`score`](Objective::score): a margin, or a
    /// calibrated probability for objectives that override it.
    pub score: f64,
    /// Version of the snapshot used.
    pub version: u64,
    /// Training epoch of the snapshot used.
    pub epoch: usize,
}

/// Evaluates an [`Objective`]'s score against immutable snapshots while the
/// session keeps training.
///
/// Cloneable and freely shareable across threads: it holds only `Arc`s onto
/// the session's [`SnapshotCell`] and objective, and every call reads
/// whichever snapshot is current through the cell's lock-free load.
#[derive(Clone)]
pub struct Predictor {
    objective: Arc<dyn Objective>,
    cell: Arc<SnapshotCell>,
}

impl std::fmt::Debug for Predictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Predictor")
            .field("objective", &self.objective.name())
            .field("snapshot_version", &self.cell.version())
            .finish()
    }
}

impl Predictor {
    /// A predictor over `cell` scoring with `objective`.
    pub fn new(objective: Arc<dyn Objective>, cell: Arc<SnapshotCell>) -> Self {
        Predictor { objective, cell }
    }

    /// The current snapshot, or `None` before the first epoch publishes.
    pub fn snapshot(&self) -> Option<Arc<ModelSnapshot>> {
        self.cell.load()
    }

    /// Score one input (`None` before the first publication).
    pub fn predict(&self, input: &SparseVector) -> Option<Prediction> {
        let snapshot = self.cell.load()?;
        Some(Prediction {
            score: self.objective.score(input, snapshot.model()),
            version: snapshot.version,
            epoch: snapshot.epoch,
        })
    }

    /// Score a batch against **one** snapshot load: every result in the
    /// returned vector is consistent with the same model version, and the
    /// per-request cost of the (already lock-free) load amortizes away.
    pub fn predict_batch(&self, inputs: &[SparseVector]) -> Option<Vec<Prediction>> {
        let snapshot = self.cell.load()?;
        Some(
            inputs
                .iter()
                .map(|input| Prediction {
                    score: self.objective.score(input, snapshot.model()),
                    version: snapshot.version,
                    epoch: snapshot.epoch,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dw_optim::{Logistic, SvmHinge};
    use std::time::Duration;

    #[test]
    fn predicts_against_the_published_snapshot_only() {
        let cell = Arc::new(SnapshotCell::new());
        let predictor = Predictor::new(Arc::new(SvmHinge::default()), Arc::clone(&cell));
        let input = SparseVector::from_parts(vec![0, 2], vec![1.0, 2.0]);
        assert!(predictor.predict(&input).is_none(), "nothing published yet");

        cell.publish(1, 0.9, Duration::ZERO, vec![0.5, -1.0, 0.25]);
        let p = predictor.predict(&input).unwrap();
        assert_eq!(p.score, 0.5 + 2.0 * 0.25);
        assert_eq!((p.version, p.epoch), (1, 1));

        // A new publication is picked up; the old Arc (if held) is
        // unchanged.
        let held = predictor.snapshot().unwrap();
        cell.publish(2, 0.8, Duration::ZERO, vec![1.0, 0.0, 0.0]);
        let p2 = predictor.predict(&input).unwrap();
        assert_eq!(p2.score, 1.0);
        assert_eq!(p2.version, 2);
        assert_eq!(held.version, 1, "held snapshots are immutable");
    }

    #[test]
    fn batch_scoring_is_single_snapshot_consistent() {
        let cell = Arc::new(SnapshotCell::new());
        cell.publish(3, 0.5, Duration::ZERO, vec![1.0, 2.0]);
        let predictor = Predictor::new(Arc::new(Logistic::default()), cell);
        let inputs = vec![
            SparseVector::from_parts(vec![0], vec![1.0]),
            SparseVector::from_parts(vec![1], vec![-1.0]),
        ];
        let batch = predictor.predict_batch(&inputs).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|p| p.version == 1 && p.epoch == 3));
        // Logistic scores are calibrated probabilities.
        assert!(batch[0].score > 0.5 && batch[0].score < 1.0);
        assert!(batch[1].score < 0.5 && batch[1].score > 0.0);
    }
}
