//! The server: a registry of concurrent training sessions leasing one
//! worker pool.
//!
//! This inverts the engine's ownership model.  A standalone
//! [`dimmwitted::Session`] owns its executor (and therefore its worker
//! pool) for its whole life; a [`Server`] owns **one** `Arc<WorkerPool>`
//! and a small set of *trainer* threads, and every admitted session leases
//! them one epoch at a time:
//!
//! * [`Server::admit`] builds the session over the shared pool
//!   ([`SessionBuilder::with_pool`]), wires its
//!   [`on_epoch_model`](SessionBuilder::on_epoch_model) hook to a
//!   [`SnapshotCell`], weighs it by its plan's simulated epoch cost
//!   (`sim_exec`), and registers it with the [`FairScheduler`].
//! * Trainer threads loop: ask the scheduler for the next session whose
//!   stream is checked in, run **one epoch**, check the stream back in.
//!   Epoch-granularity time slicing means a session's epochs execute
//!   exactly as they would solo — same item order, same replica math — so
//!   concurrent traces stay bit-identical to solo runs.
//! * [`SessionHandle`] is the tenant's view: predictors, stats, blocking
//!   [`wait`](SessionHandle::wait), and graceful
//!   [`evict`](SessionHandle::evict) (finish the in-flight epoch, publish
//!   nothing more, release the lease).

use crate::predictor::Predictor;
use crate::scheduler::{FairScheduler, SessionId};
use crate::snapshot::SnapshotCell;
use crate::stats::{SessionStats, StatsReport};
use dimmwitted::sim_exec::simulate_epoch;
use dimmwitted::{
    AnalyticsTask, CancelToken, DimmWitted, EpochStream, ExecutionPlan, SessionBuilder, StopReason,
    WorkerPool,
};
use dw_numa::MachineTopology;
use dw_optim::{ConvergenceTrace, Objective};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How a session's epochs execute on the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// Threaded epochs on the server's shared [`WorkerPool`] (the serving
    /// default).  Bit-deterministic for PerCore-replication plans, whose
    /// workers each own a replica.
    #[default]
    SharedPool,
    /// Deterministic single-thread interleaving (the engine's reproducible
    /// mode); the session never touches the pool.
    Interleaved,
}

/// Everything needed to admit one tenant.
#[derive(Debug)]
pub struct SessionSpec {
    name: String,
    task: AnalyticsTask,
    plan: Option<ExecutionPlan>,
    epochs: usize,
    seed: u64,
    execution: Execution,
    layout_file: Option<std::path::PathBuf>,
}

impl SessionSpec {
    /// A spec for `task` under `name`, with the optimizer choosing the plan
    /// and the serving defaults (shared-pool execution, seed 0).
    pub fn new(name: impl Into<String>, task: AnalyticsTask) -> Self {
        SessionSpec {
            name: name.into(),
            task,
            plan: None,
            epochs: 10,
            seed: 0,
            execution: Execution::default(),
            layout_file: None,
        }
    }

    /// Execute an explicit plan instead of the optimizer's choice.
    pub fn plan(mut self, plan: ExecutionPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Epoch budget.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// RNG seed (same meaning as [`SessionBuilder::seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Choose how epochs execute.
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Persist materialized layouts to `path` and re-open them from there
    /// on later admissions (same semantics as [`SessionBuilder::layout_file`]):
    /// a restarted server admitting the same task skips the COO stream and
    /// serves the layouts straight from the file image.
    pub fn layout_file(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.layout_file = Some(path.into());
        self
    }
}

/// Checked-in/checked-out state of a session's epoch stream.
enum StreamSlot {
    /// Available to trainers.
    Idle(Box<EpochStream>),
    /// A trainer is running an epoch right now.
    Running,
    /// The stream was drained (budget, early stop, cancellation).
    Finished,
}

/// Shared state of one admitted session.
struct SessionState {
    id: SessionId,
    name: String,
    cell: Arc<SnapshotCell>,
    objective: Arc<dyn Objective>,
    stats: Arc<SessionStats>,
    cancel: CancelToken,
    /// Simulated seconds per epoch — the scheduler weight.
    epoch_cost: f64,
    slot: Mutex<StreamSlot>,
    done: AtomicBool,
    /// Final trace and stop reason, set when the stream drains.
    outcome: Mutex<Option<(ConvergenceTrace, StopReason)>>,
}

/// State shared between the server handle and its trainer threads.
struct ServerCore {
    scheduler: FairScheduler,
    sessions: Mutex<HashMap<SessionId, Arc<SessionState>>>,
    /// Signalled on admission, epoch completion, and shutdown.
    signal: Condvar,
    /// Guards nothing in particular; pairs with `signal`.
    signal_lock: Mutex<()>,
    shutdown: AtomicBool,
}

impl ServerCore {
    fn notify(&self) {
        let _held = self.signal_lock.lock().expect("signal lock poisoned");
        self.signal.notify_all();
    }

    /// Check out the fair scheduler's next runnable stream, if any.
    fn checkout(&self) -> Option<(Arc<SessionState>, Box<EpochStream>)> {
        let sessions = self.sessions.lock().expect("registry poisoned");
        let runnable: Vec<SessionId> = sessions
            .values()
            .filter(|s| matches!(*s.slot.lock().expect("slot poisoned"), StreamSlot::Idle(_)))
            .map(|s| s.id)
            .collect();
        let id = self.scheduler.next_of(&runnable)?;
        let state = Arc::clone(sessions.get(&id)?);
        let mut slot = state.slot.lock().expect("slot poisoned");
        match std::mem::replace(&mut *slot, StreamSlot::Running) {
            StreamSlot::Idle(stream) => {
                drop(slot);
                Some((state, stream))
            }
            other => {
                // Selection and checkout both happen under the registry
                // lock, so the slot cannot have moved — restore defensively.
                *slot = other;
                None
            }
        }
    }

    /// Run one epoch of `stream` for `state`, checking the stream back in
    /// (or retiring the session when it drains).
    fn run_one_epoch(&self, state: &Arc<SessionState>, mut stream: Box<EpochStream>) {
        match stream.next() {
            Some(_event) => {
                // The on_epoch_model hook already published the snapshot
                // and bumped the stats.
                *state.slot.lock().expect("slot poisoned") = StreamSlot::Idle(stream);
            }
            None => {
                let reason = stream
                    .stop_reason()
                    .expect("a drained stream has a stop reason");
                let report = stream.into_report();
                *state.outcome.lock().expect("outcome poisoned") = Some((report.trace, reason));
                *state.slot.lock().expect("slot poisoned") = StreamSlot::Finished;
                state.done.store(true, Ordering::Release);
                self.scheduler.remove(state.id);
            }
        }
        self.notify();
    }
}

/// Builds a [`Server`] for one machine.
#[derive(Debug)]
pub struct ServerBuilder {
    machine: MachineTopology,
    pool_workers: usize,
    trainers: usize,
}

impl ServerBuilder {
    /// Server defaults for `machine`: a pool of `total_cores()` workers and
    /// two trainer threads (two sessions' epochs in flight at once).
    pub fn new(machine: MachineTopology) -> Self {
        let pool_workers = machine.total_cores().max(1);
        ServerBuilder {
            machine,
            pool_workers,
            trainers: 2,
        }
    }

    /// Size of the shared worker pool.
    pub fn pool_workers(mut self, workers: usize) -> Self {
        self.pool_workers = workers.max(1);
        self
    }

    /// Number of trainer threads (concurrent in-flight epochs).
    pub fn trainers(mut self, trainers: usize) -> Self {
        self.trainers = trainers.max(1);
        self
    }

    /// Spawn the pool and trainer threads; the server is ready to admit.
    pub fn build(self) -> Server {
        let pool = Arc::new(WorkerPool::new(self.pool_workers));
        let core = Arc::new(ServerCore {
            scheduler: FairScheduler::new(),
            sessions: Mutex::new(HashMap::new()),
            signal: Condvar::new(),
            signal_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
        });
        let trainers = (0..self.trainers)
            .map(|t| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("dw-trainer-{t}"))
                    .spawn(move || trainer_loop(&core))
                    .expect("failed to spawn trainer thread")
            })
            .collect();
        Server {
            machine: self.machine,
            pool,
            core,
            trainers,
            next_id: AtomicU64::new(0),
        }
    }
}

/// Trainer threads: fair-scheduled, epoch-granularity time slicing.
fn trainer_loop(core: &ServerCore) {
    while !core.shutdown.load(Ordering::Acquire) {
        match core.checkout() {
            Some((state, stream)) => core.run_one_epoch(&state, stream),
            None => {
                let held = core.signal_lock.lock().expect("signal lock poisoned");
                // Re-check under the lock so a notify between the failed
                // checkout and this wait is not lost, then sleep briefly.
                if !core.shutdown.load(Ordering::Acquire) {
                    let _ = core
                        .signal
                        .wait_timeout(held, Duration::from_millis(1))
                        .expect("signal lock poisoned");
                }
            }
        }
    }
}

/// A multi-tenant serving front: one shared pool, fair-scheduled training,
/// lock-free snapshot publication, per-session predictors.
pub struct Server {
    machine: MachineTopology,
    pool: Arc<WorkerPool>,
    core: Arc<ServerCore>,
    trainers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("machine", &self.machine.name)
            .field("pool_workers", &self.pool.workers())
            .field("trainers", &self.trainers.len())
            .field("sessions", &self.session_count())
            .finish()
    }
}

impl Server {
    /// Start configuring a server for `machine`.
    pub fn builder(machine: MachineTopology) -> ServerBuilder {
        ServerBuilder::new(machine)
    }

    /// The shared pool sessions lease.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The machine this server models.
    pub fn machine(&self) -> &MachineTopology {
        &self.machine
    }

    /// Sessions currently registered (training or finished, not evicted).
    pub fn session_count(&self) -> usize {
        self.core.sessions.lock().expect("registry poisoned").len()
    }

    /// Admit a session: resolve its plan, weigh it by simulated epoch cost,
    /// wire snapshot publication, and hand its stream to the trainers.
    ///
    /// Returns immediately; training proceeds in the background under the
    /// fair scheduler.
    pub fn admit(&self, spec: SessionSpec) -> SessionHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let objective = Arc::clone(&spec.task.objective);
        let data = Arc::clone(&spec.task.data);
        let cell = Arc::new(SnapshotCell::new());
        let stats = Arc::new(SessionStats::new());
        let cancel = CancelToken::new();

        let publish_cell = Arc::clone(&cell);
        let publish_stats = Arc::clone(&stats);
        let mut builder: SessionBuilder = DimmWitted::on(self.machine.clone())
            .task(spec.task)
            .epochs(spec.epochs)
            .seed(spec.seed)
            .cancel_token(cancel.clone())
            .on_epoch_model(move |event, model| {
                publish_stats.record_epoch();
                publish_cell.publish(event.epoch, event.loss, event.elapsed, model.to_vec());
            });
        if let Some(plan) = spec.plan {
            builder = builder.plan(plan);
        }
        if let Some(path) = spec.layout_file {
            builder = builder.layout_file(path);
        }
        if spec.execution == Execution::SharedPool {
            builder = builder.with_pool(Arc::clone(&self.pool));
        }
        let session = builder.build();
        // The scheduler weight: what one epoch of the *resolved* plan costs
        // on this machine in the paper's cost model.
        let epoch_cost = simulate_epoch(
            &data.stats(),
            objective.row_update_density(),
            session.plan(),
            &self.machine,
        )
        .seconds;

        let state = Arc::new(SessionState {
            id,
            name: spec.name,
            cell,
            objective,
            stats,
            cancel,
            epoch_cost,
            slot: Mutex::new(StreamSlot::Idle(Box::new(session.stream()))),
            done: AtomicBool::new(false),
            outcome: Mutex::new(None),
        });
        self.core
            .sessions
            .lock()
            .expect("registry poisoned")
            .insert(id, Arc::clone(&state));
        self.core.scheduler.admit(id, epoch_cost);
        self.core.notify();
        SessionHandle {
            state,
            core: Arc::clone(&self.core),
        }
    }

    /// Graceful shutdown: stop granting epochs, let in-flight epochs finish,
    /// join the trainers.  Registered sessions keep their published
    /// snapshots readable through outstanding predictors.
    pub fn shutdown(mut self) {
        self.stop_trainers();
    }

    fn stop_trainers(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        self.core.notify();
        for trainer in self.trainers.drain(..) {
            let _ = trainer.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_trainers();
    }
}

/// The tenant's handle onto its admitted session.
#[derive(Clone)]
pub struct SessionHandle {
    state: Arc<SessionState>,
    core: Arc<ServerCore>,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("id", &self.state.id)
            .field("name", &self.state.name)
            .field("done", &self.is_done())
            .finish()
    }
}

impl SessionHandle {
    /// The session's registry id.
    pub fn id(&self) -> SessionId {
        self.state.id
    }

    /// The name the session was admitted under.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// Simulated seconds one epoch costs — the session's scheduler weight.
    pub fn epoch_cost(&self) -> f64 {
        self.state.epoch_cost
    }

    /// A lock-free read-path predictor over this session's snapshots.
    /// Cloneable, shareable, and valid after eviction (it pins the
    /// snapshot cell, not the session).
    pub fn predictor(&self) -> Predictor {
        Predictor::new(
            Arc::clone(&self.state.objective),
            Arc::clone(&self.state.cell),
        )
    }

    /// Point-in-time serving stats.
    pub fn stats(&self) -> StatsReport {
        self.state
            .stats
            .report(self.state.cell.epoch(), self.state.cell.version())
    }

    /// The per-session stats sink (shared with the front-end so prediction
    /// latencies land in the same report).
    pub(crate) fn stats_sink(&self) -> Arc<SessionStats> {
        Arc::clone(&self.state.stats)
    }

    pub(crate) fn snapshot_cell(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.state.cell)
    }

    pub(crate) fn objective(&self) -> Arc<dyn Objective> {
        Arc::clone(&self.state.objective)
    }

    /// Whether training has drained (budget, early stop, or eviction).
    pub fn is_done(&self) -> bool {
        self.state.done.load(Ordering::Acquire)
    }

    /// Block until training drains; returns the final convergence trace and
    /// why it stopped.
    pub fn wait(&self) -> (ConvergenceTrace, StopReason) {
        let mut held = self.core.signal_lock.lock().expect("signal lock poisoned");
        while !self.is_done() {
            held = self
                .core
                .signal
                .wait_timeout(held, Duration::from_millis(1))
                .expect("signal lock poisoned")
                .0;
        }
        drop(held);
        self.state
            .outcome
            .lock()
            .expect("outcome poisoned")
            .clone()
            .expect("done sessions have an outcome")
    }

    /// Gracefully evict: cancel at the next epoch boundary, wait for the
    /// in-flight epoch to finish, and deregister the session.  Published
    /// snapshots stay readable through existing [`Predictor`]s.
    pub fn evict(self) -> (ConvergenceTrace, StopReason) {
        self.state.cancel.cancel();
        self.core.notify();
        let outcome = self.wait();
        self.core
            .sessions
            .lock()
            .expect("registry poisoned")
            .remove(&self.state.id);
        self.core.scheduler.remove(self.state.id);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmwitted::{AccessMethod, DataReplication, ModelKind, ModelReplication};
    use dw_data::{Dataset, PaperDataset};

    fn task(seed: u64) -> AnalyticsTask {
        let dataset = Dataset::generate(PaperDataset::Reuters, seed);
        AnalyticsTask::from_dataset(&dataset, ModelKind::Svm)
    }

    fn machine() -> MachineTopology {
        MachineTopology::local2()
    }

    fn percore_plan() -> ExecutionPlan {
        ExecutionPlan::new(
            &machine(),
            AccessMethod::RowWise,
            ModelReplication::PerCore,
            DataReplication::Sharding,
        )
        .with_workers(4)
    }

    #[test]
    fn admits_trains_and_serves_one_session() {
        let server = Server::builder(machine()).pool_workers(4).build();
        let handle = server.admit(
            SessionSpec::new("svm", task(7))
                .plan(percore_plan())
                .epochs(3)
                .seed(7),
        );
        let (trace, reason) = handle.wait();
        assert_eq!(reason, StopReason::EpochBudget);
        assert_eq!(trace.epochs(), 3);
        let stats = handle.stats();
        assert_eq!(stats.epochs, 3);
        assert_eq!(stats.snapshot_epoch, 3);
        assert_eq!(stats.staleness_epochs, 0, "publication kept up");
        // The predictor serves the final model.
        let snap = handle.predictor().snapshot().expect("published");
        assert_eq!(snap.epoch, 3);
        assert!(snap.is_consistent());
        assert_eq!(snap.loss, trace.points.last().unwrap().loss);
        server.shutdown();
    }

    #[test]
    fn concurrent_sessions_share_the_pool_and_both_finish() {
        let server = Server::builder(machine())
            .pool_workers(4)
            .trainers(2)
            .build();
        let a = server.admit(
            SessionSpec::new("a", task(1))
                .plan(percore_plan())
                .epochs(4)
                .seed(1),
        );
        let b = server.admit(
            SessionSpec::new("b", task(2))
                .plan(percore_plan())
                .epochs(4)
                .seed(2),
        );
        let (trace_a, _) = a.wait();
        let (trace_b, _) = b.wait();
        assert_eq!(trace_a.epochs(), 4);
        assert_eq!(trace_b.epochs(), 4);
        assert_eq!(server.pool().workers(), 4, "one pool, never resized");
        assert_eq!(server.session_count(), 2);
        server.shutdown();
    }

    #[test]
    fn eviction_stops_at_an_epoch_boundary_and_keeps_snapshots() {
        let server = Server::builder(machine()).pool_workers(2).build();
        let handle = server.admit(
            SessionSpec::new("long", task(3))
                .plan(percore_plan())
                .epochs(1_000_000)
                .execution(Execution::Interleaved),
        );
        // Let it publish at least once, then evict.
        let predictor = handle.predictor();
        while predictor.snapshot().is_none() {
            std::thread::yield_now();
        }
        let (trace, reason) = handle.evict();
        assert_eq!(reason, StopReason::Cancelled);
        assert!(trace.epochs() >= 1);
        assert!(trace.epochs() < 1_000_000);
        assert_eq!(server.session_count(), 0, "deregistered");
        // Predictors created before eviction still serve the last snapshot.
        let p = predictor
            .predict(&dw_matrix::SparseVector::from_parts(vec![0], vec![1.0]))
            .expect("snapshot survives eviction");
        assert!(p.score.is_finite());
        server.shutdown();
    }

    #[test]
    fn heavier_plans_get_heavier_scheduler_weights() {
        let server = Server::builder(machine()).pool_workers(2).build();
        let light = server.admit(
            SessionSpec::new("light", task(4))
                .plan(percore_plan())
                .epochs(1),
        );
        // Same data, but a plan the simulator charges more for (PerMachine
        // serializes every write to one model copy across nodes).
        let heavy_plan = ExecutionPlan::new(
            &machine(),
            AccessMethod::RowWise,
            ModelReplication::PerMachine,
            DataReplication::FullReplication,
        )
        .with_workers(1);
        let heavy = server.admit(
            SessionSpec::new("heavy", task(4))
                .plan(heavy_plan)
                .epochs(1),
        );
        assert!(
            heavy.epoch_cost() > light.epoch_cost(),
            "sim_exec weighs the heavy plan heavier: {} vs {}",
            heavy.epoch_cost(),
            light.epoch_cost()
        );
        light.wait();
        heavy.wait();
        server.shutdown();
    }
}
