//! Multi-tenant serving for the DimmWitted engine.
//!
//! The paper's engine assumes one analytics task owns the machine.  This
//! crate converts that ownership model into a server: many concurrent
//! training [`dimmwitted::Session`]s lease **one** shared
//! [`dimmwitted::WorkerPool`] under fair scheduling, while a lock-free read
//! path serves predictions from models that are still training — the hybrid
//! train/serve co-residency problem, isolated at epoch granularity so
//! neither stream stalls the other.
//!
//! The pieces, bottom-up:
//!
//! * [`snapshot`] — versioned, checksummed [`ModelSnapshot`]s published
//!   through a [`SnapshotCell`]: an `arc-swap`-style atomic pointer ring
//!   with a **lock-free read path** (readers pin-clone-unpin; writers
//!   serialize among themselves and never block a reader).
//! * [`predictor`] — [`Predictor`] evaluates any
//!   [`Objective`](dw_optim::Objective)'s read-only
//!   [`score`](dw_optim::Objective::score) against an immutable snapshot;
//!   batch scoring reuses one snapshot load.
//! * [`scheduler`] — [`FairScheduler`], stride scheduling over each plan's
//!   simulated epoch cost (`sim_exec`), so a heavy tenant runs fewer epochs
//!   instead of starving light ones.
//! * [`registry`] — [`Server`] / [`ServerBuilder`] / [`SessionHandle`]:
//!   admission ([`Server::admit`]) builds the session over the shared pool,
//!   wires snapshot publication to the epoch stream's
//!   [`on_epoch_model`](dimmwitted::SessionBuilder::on_epoch_model) hook,
//!   and trainer threads time-slice whole epochs across tenants — keeping
//!   each session's trace bit-identical to its solo run.
//! * [`server`] — [`Frontend`], an in-process request queue whose drain
//!   workers batch same-session requests against one snapshot load, with
//!   enqueue-to-reply latency recorded into per-session
//!   [`StatsReport`]s (`epochs/s`, `predictions/s`, snapshot staleness).
//!
//! ```
//! use dimmwitted::{AnalyticsTask, ModelKind};
//! use dw_data::{Dataset, PaperDataset};
//! use dw_numa::MachineTopology;
//! use dw_serve::{Server, SessionSpec};
//!
//! let dataset = Dataset::generate(PaperDataset::Reuters, 42);
//! let task = AnalyticsTask::from_dataset(&dataset, ModelKind::Svm);
//! let server = Server::builder(MachineTopology::local2()).build();
//! let session = server.admit(SessionSpec::new("svm", task).epochs(3));
//! session.wait();
//! let input = dw_matrix::SparseVector::from_parts(vec![0, 3], vec![1.0, -0.5]);
//! let prediction = session.predictor().predict(&input).unwrap();
//! assert!(prediction.score.is_finite());
//! assert_eq!(prediction.epoch, 3);
//! server.shutdown();
//! ```

pub mod predictor;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod snapshot;
pub mod stats;

pub use predictor::{Prediction, Predictor};
pub use registry::{Execution, Server, ServerBuilder, SessionHandle, SessionSpec};
pub use scheduler::{FairScheduler, SessionId};
pub use server::{Frontend, PredictReply, Ticket};
pub use snapshot::{ModelSnapshot, SnapshotCell};
pub use stats::{SessionStats, StatsReport};

#[cfg(test)]
mod tests {
    use super::*;
    use dimmwitted::{AnalyticsTask, ModelKind};
    use dw_data::{Dataset, PaperDataset};
    use dw_matrix::SparseVector;
    use dw_numa::MachineTopology;

    #[test]
    fn train_and_serve_through_the_frontend() {
        let dataset = Dataset::generate(PaperDataset::Reuters, 42);
        let task = AnalyticsTask::from_dataset(&dataset, ModelKind::Svm);
        let server = Server::builder(MachineTopology::local2())
            .pool_workers(4)
            .build();
        let session = server.admit(SessionSpec::new("svm", task).epochs(5));
        let frontend = Frontend::new(2, 8);

        // Serve while training runs; before the first publication the
        // front-end replies with version 0 and a NaN score.
        let inputs: Vec<SparseVector> = (0..64)
            .map(|i| SparseVector::from_parts(vec![i % 7, 10 + i % 5], vec![1.0, -0.5]))
            .collect();
        let tickets = frontend.submit_batch(&session, inputs);
        let replies: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
        assert_eq!(replies.len(), 64);
        for reply in &replies {
            assert!(reply.version > 0 || reply.score.is_nan());
            assert!(reply.latency > std::time::Duration::ZERO);
        }

        session.wait();
        let after = frontend.submit(&session, SparseVector::from_parts(vec![0], vec![1.0]));
        let reply = after.wait();
        assert_eq!(reply.epoch, 5, "served from the final snapshot");
        assert!(reply.score.is_finite());

        let stats = session.stats();
        assert_eq!(stats.epochs, 5);
        assert_eq!(stats.predictions, 65);
        assert!(stats.p99_latency_us >= stats.p50_latency_us);
        assert!(
            frontend.batches() < frontend.requests(),
            "same-session requests were batched: {} batches for {} requests",
            frontend.batches(),
            frontend.requests()
        );
        frontend.shutdown();
        server.shutdown();
    }
}
