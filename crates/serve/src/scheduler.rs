//! Fair epoch-task scheduling across admitted sessions.
//!
//! Trainer threads run whole epochs, one at a time, on behalf of whichever
//! session the scheduler picks.  Fairness is **stride scheduling over
//! simulated epoch cost**: each session's pass value advances by its
//! plan's `sim_exec` seconds per epoch, and the scheduler always picks the
//! runnable session with the smallest pass.  Cumulative simulated compute
//! therefore stays balanced across tenants — a heavy session (a ClueWeb-
//! sized plan whose epochs cost 100× a small one's) runs 100× *fewer*
//! epochs rather than monopolizing the pool, and a light session admitted
//! next to it never starves.
//!
//! Admission sets a newcomer's pass to the current minimum, so it competes
//! from "now" instead of replaying the backlog of everyone else's history.

use std::sync::Mutex;

/// Identifies an admitted session within its server.
pub type SessionId = u64;

#[derive(Debug, Clone)]
struct Entry {
    id: SessionId,
    /// Cumulative simulated seconds this session has been granted.
    pass: f64,
    /// Simulated seconds one epoch of this session costs (the stride).
    weight: f64,
}

/// Min-pass stride scheduler; all methods lock briefly, epochs run outside.
#[derive(Debug, Default)]
pub struct FairScheduler {
    entries: Mutex<Vec<Entry>>,
}

impl FairScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        FairScheduler::default()
    }

    /// Admit a session whose epochs cost `weight` simulated seconds
    /// (clamped to a small positive floor so a degenerate zero-cost plan
    /// still advances).
    pub fn admit(&self, id: SessionId, weight: f64) {
        let mut entries = self.entries.lock().expect("scheduler poisoned");
        let start = entries.iter().map(|e| e.pass).fold(f64::INFINITY, f64::min);
        entries.push(Entry {
            id,
            pass: if start.is_finite() { start } else { 0.0 },
            weight: weight.max(1e-12),
        });
    }

    /// Remove a finished or evicted session.
    pub fn remove(&self, id: SessionId) {
        self.entries
            .lock()
            .expect("scheduler poisoned")
            .retain(|e| e.id != id);
    }

    /// Pick the next session to grant one epoch to, among `runnable`
    /// (sessions whose stream is checked in), and charge its stride.
    /// Returns `None` when nothing runnable is admitted.
    pub fn next_of(&self, runnable: &[SessionId]) -> Option<SessionId> {
        let mut entries = self.entries.lock().expect("scheduler poisoned");
        let chosen = entries
            .iter_mut()
            .filter(|e| runnable.contains(&e.id))
            .min_by(|a, b| a.pass.total_cmp(&b.pass))?;
        chosen.pass += chosen.weight;
        Some(chosen.id)
    }

    /// Number of admitted sessions.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("scheduler poisoned").len()
    }

    /// Whether no session is admitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Grant `turns` epochs and count how many each session received.
    fn run(scheduler: &FairScheduler, runnable: &[SessionId], turns: usize) -> Vec<usize> {
        let max = *runnable.iter().max().unwrap() as usize;
        let mut counts = vec![0usize; max + 1];
        for _ in 0..turns {
            let id = scheduler.next_of(runnable).expect("runnable");
            counts[id as usize] += 1;
        }
        counts
    }

    #[test]
    fn heavy_sessions_cannot_starve_light_ones() {
        let scheduler = FairScheduler::new();
        scheduler.admit(0, 4.0); // heavy: each epoch costs 4 simulated seconds
        scheduler.admit(1, 1.0); // light
        let counts = run(&scheduler, &[0, 1], 500);
        // Equal simulated-time share: the light session runs ~4x the epochs.
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(
            (3.5..=4.5).contains(&ratio),
            "light/heavy epoch ratio {ratio} (counts {counts:?})"
        );
        assert!(counts[0] >= 90, "the heavy session still progresses");
    }

    #[test]
    fn equal_weights_round_robin() {
        let scheduler = FairScheduler::new();
        for id in 0..3 {
            scheduler.admit(id, 2.5);
        }
        let counts = run(&scheduler, &[0, 1, 2], 300);
        assert_eq!(counts, vec![100, 100, 100]);
    }

    #[test]
    fn late_admission_starts_at_the_current_minimum() {
        let scheduler = FairScheduler::new();
        scheduler.admit(0, 1.0);
        for _ in 0..1000 {
            scheduler.next_of(&[0]);
        }
        // A newcomer must not be granted 1000 catch-up epochs.
        scheduler.admit(1, 1.0);
        let counts = run(&scheduler, &[0, 1], 100);
        assert!(counts[0] >= 45, "the incumbent keeps running: {counts:?}");
        assert!(counts[1] >= 45, "the newcomer gets its share: {counts:?}");
    }

    #[test]
    fn busy_sessions_are_skipped_not_queued() {
        let scheduler = FairScheduler::new();
        scheduler.admit(0, 1.0);
        scheduler.admit(1, 1.0);
        // Session 0's stream is checked out: only 1 is runnable.
        assert_eq!(scheduler.next_of(&[1]), Some(1));
        assert_eq!(scheduler.next_of(&[]), None);
        scheduler.remove(1);
        assert_eq!(scheduler.len(), 1);
        assert_eq!(scheduler.next_of(&[0]), Some(0));
    }
}
