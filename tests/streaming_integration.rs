//! Integration tests for the streaming-ingest subsystem: live-fed sessions
//! bit-match the equivalent static run, drifting arrival statistics move the
//! optimizer's decision through the online replan controller, and the
//! ingest counters (delta-page appends, compactions) surface per epoch.

use dimmwitted::{
    run_online, AccessMethod, AnalyticsTask, DimmWitted, DriftController, EpochEvent, LiveBatch,
    ModelKind, OnlineConfig,
};
use dw_data::{streamed_row, streamed_rows_into};
use dw_matrix::{DataMatrix, LiveSource, SpillWriter, TempSpillDir, ENTRY_BYTES};
use dw_numa::MachineTopology;
use dw_optim::TaskData;
use std::sync::Arc;

fn machine() -> MachineTopology {
    MachineTopology::local2()
}

fn loss_bits(events: &[EpochEvent]) -> Vec<u64> {
    events.iter().map(|e| e.loss.to_bits()).collect()
}

/// Acceptance criterion of the subsystem: a live-fed session whose pages all
/// arrive before epoch 0 produces a convergence trace bit-identical to the
/// same rows spilled statically through a `SpillWriter`.
#[test]
fn live_fed_session_bit_matches_the_static_run() {
    const ROWS: usize = 200;
    const COLS: usize = 64;
    const NNZ: usize = 4;
    const SEED: u64 = 7;
    const EPOCHS: usize = 6;
    const BUDGET: usize = 1 << 20;

    let dir = TempSpillDir::new("dw-stream-parity").unwrap();

    // Static reference: the rows go through the batch spill path.
    let mut writer = SpillWriter::create(dir.file("static.dwp"), ROWS, COLS).unwrap();
    let static_labels = streamed_rows_into(COLS, NNZ, SEED, 0..ROWS, &mut writer);
    let static_source = Arc::new(writer.finish().unwrap().delete_on_drop());
    let static_matrix = DataMatrix::from_source(static_source, BUDGET);

    // Live run: the same rows arrive through the ingest path and are sealed
    // before the session is built.
    let live = LiveSource::create(dir.file("live.dwp"), COLS).unwrap();
    let live_labels = streamed_rows_into(COLS, NNZ, SEED, 0..ROWS, &mut &live);
    live.seal().unwrap();
    assert_eq!(live.rows(), ROWS);
    assert_eq!(static_labels, live_labels);
    let live_matrix = live.snapshot_matrix(BUDGET);

    let run = |matrix: DataMatrix, labels: Vec<f64>| -> Vec<EpochEvent> {
        let task = AnalyticsTask::new(
            "stream",
            TaskData::supervised(matrix, labels),
            ModelKind::Svm,
        );
        let mut stream = DimmWitted::on(machine())
            .task(task)
            .plan_auto()
            .epochs(EPOCHS)
            .seed(13)
            .build()
            .stream();
        let events: Vec<EpochEvent> = stream.by_ref().collect();
        events
    };

    let static_events = run(static_matrix, static_labels);
    let live_events = run(live_matrix, live_labels);
    assert_eq!(static_events.len(), EPOCHS);
    assert_eq!(
        loss_bits(&static_events),
        loss_bits(&live_events),
        "live-fed trace must be bit-identical to the static spill run"
    );
}

/// Incremental stats pre-seeded by `LiveSource::seal` feed the optimizer the
/// same picture as from-scratch stats: both paths resolve the same plan.
#[test]
fn live_snapshot_stats_resolve_the_same_auto_plan_as_static() {
    const ROWS: usize = 120;
    const COLS: usize = 48;
    let dir = TempSpillDir::new("dw-stream-plan").unwrap();

    let mut writer = SpillWriter::create(dir.file("static.dwp"), ROWS, COLS).unwrap();
    let labels = streamed_rows_into(COLS, 3, 21, 0..ROWS, &mut writer);
    let static_source = Arc::new(writer.finish().unwrap().delete_on_drop());
    let static_matrix = DataMatrix::from_source(static_source, 1 << 20);

    let live = LiveSource::create(dir.file("live.dwp"), COLS).unwrap();
    let live_labels = streamed_rows_into(COLS, 3, 21, 0..ROWS, &mut &live);
    live.seal().unwrap();
    let live_matrix = live.snapshot_matrix(1 << 20);

    assert_eq!(static_matrix.stats(), live_matrix.stats());

    let plan_of = |matrix: DataMatrix, labels: Vec<f64>| {
        let task = AnalyticsTask::new("plan", TaskData::supervised(matrix, labels), ModelKind::Svm);
        DimmWitted::on(machine())
            .task(task)
            .plan_auto()
            .epochs(1)
            .build()
            .plan()
            .clone()
    };
    let static_plan = plan_of(static_matrix, labels);
    let live_plan = plan_of(live_matrix, live_labels);
    assert_eq!(static_plan.access, live_plan.access);
    assert_eq!(static_plan.model_replication, live_plan.model_replication);
    assert_eq!(static_plan.layout, live_plan.layout);
}

/// The drift scenario of `EXPERIMENTS.md`: the task starts in column-access
/// territory (many short 2-nnz rows against a wide model, graph-like), then
/// wide 40-nnz rows arrive mid-run and blow up the `Σᵢnᵢ²` column-read term
/// until row-wise access wins.  The replan controller must notice the moved
/// decision and switch the running session's plan.
#[test]
fn drift_controller_switches_access_method_under_arrival_drift() {
    const COLS: usize = 300;
    const BASE_ROWS: usize = 400;
    const WIDE_PER_EPOCH: usize = 20;
    const WIDE_EPOCHS: usize = 5;
    const SEED: u64 = 3;

    let dir = TempSpillDir::new("dw-stream-drift").unwrap();
    let live = LiveSource::create(dir.file("drift.dwp"), COLS).unwrap();
    let mut labels = streamed_rows_into(COLS, 2, SEED, 0..BASE_ROWS, &mut &live);
    live.seal().unwrap();

    let task = AnalyticsTask::new(
        "drift",
        TaskData::supervised(live.snapshot_matrix(1 << 20), labels.clone()),
        ModelKind::Svm,
    );
    let mut stream = DimmWitted::on(machine())
        .task(task)
        .plan_auto()
        .epochs(12)
        .seed(5)
        .build()
        .stream();
    let initial_access = stream.plan().access;
    assert_ne!(
        initial_access,
        AccessMethod::RowWise,
        "the 2-nnz graph-shaped prefix must start in column-access territory"
    );

    let mut controller = DriftController::new(machine()).with_cooldown(1);
    let outcome = run_online(
        &mut stream,
        &live,
        &mut labels,
        |epoch| {
            if (1..=WIDE_EPOCHS).contains(&epoch) {
                let start = BASE_ROWS + (epoch - 1) * WIDE_PER_EPOCH;
                let mut batch = LiveBatch::default();
                for row in start..start + WIDE_PER_EPOCH {
                    let (cols, label) = streamed_row(COLS, 40, SEED, row);
                    batch.rows.push(cols);
                    batch.labels.push(label);
                }
                Some(batch)
            } else {
                None
            }
        },
        Some(&mut controller),
        &OnlineConfig {
            cache_budget: 1 << 20,
            compact_above_pages: None,
        },
    )
    .unwrap();

    assert!(
        !outcome.replans.is_empty(),
        "drifted stats must trigger at least one replan"
    );
    let switch = &outcome.replans[0];
    assert_ne!(switch.from.access, AccessMethod::RowWise);
    assert_eq!(
        switch.to.access,
        AccessMethod::RowWise,
        "wide arriving rows must flip the access decision to row-wise"
    );
    assert_eq!(stream.plan().access, AccessMethod::RowWise);
    assert_eq!(live.rows(), BASE_ROWS + WIDE_EPOCHS * WIDE_PER_EPOCH);
    // Every epoch still makes finite progress across adoptions.
    assert!(outcome.events.iter().all(|e| e.loss.is_finite()));
}

/// Without a controller the plan never moves — the replan-off baseline the
/// bench compares against.
#[test]
fn replan_off_baseline_keeps_the_initial_plan() {
    const COLS: usize = 300;
    let dir = TempSpillDir::new("dw-stream-off").unwrap();
    let live = LiveSource::create(dir.file("off.dwp"), COLS).unwrap();
    let mut labels = streamed_rows_into(COLS, 2, 3, 0..400, &mut &live);
    live.seal().unwrap();

    let task = AnalyticsTask::new(
        "off",
        TaskData::supervised(live.snapshot_matrix(1 << 20), labels.clone()),
        ModelKind::Svm,
    );
    let mut stream = DimmWitted::on(machine())
        .task(task)
        .plan_auto()
        .epochs(6)
        .seed(5)
        .build()
        .stream();
    let initial_access = stream.plan().access;

    let outcome = run_online(
        &mut stream,
        &live,
        &mut labels,
        |epoch| {
            if epoch == 1 {
                let mut batch = LiveBatch::default();
                for row in 400..440 {
                    let (cols, label) = streamed_row(COLS, 40, 3, row);
                    batch.rows.push(cols);
                    batch.labels.push(label);
                }
                Some(batch)
            } else {
                None
            }
        },
        None,
        &OnlineConfig {
            cache_budget: 1 << 20,
            compact_above_pages: None,
        },
    )
    .unwrap();
    assert!(outcome.replans.is_empty());
    assert_eq!(stream.plan().access, initial_access);
}

/// Satellite: delta-page appends and compactions surface through
/// `EpochEvent`, and LSM-style compaction keeps the sealed page count (read
/// amplification) bounded while staying bit-transparent to readers.
#[test]
fn ingest_counters_surface_per_epoch_and_compaction_bounds_pages() {
    const COLS: usize = 32;
    const BOUND: usize = 3;
    let dir = TempSpillDir::new("dw-stream-compact").unwrap();
    let live = LiveSource::create(dir.file("compact.dwp"), COLS)
        .unwrap()
        .with_page_bytes(64 * ENTRY_BYTES);
    let mut labels = streamed_rows_into(COLS, 2, 17, 0..40, &mut &live);
    live.seal().unwrap();

    let task = AnalyticsTask::new(
        "compact",
        TaskData::supervised(live.snapshot_matrix(1 << 20), labels.clone()),
        ModelKind::Svm,
    );
    let mut stream = DimmWitted::on(machine())
        .task(task)
        .plan_auto()
        .epochs(10)
        .seed(1)
        .build()
        .stream();

    let outcome = run_online(
        &mut stream,
        &live,
        &mut labels,
        |epoch| {
            if (1..=8).contains(&epoch) {
                let start = 40 + (epoch - 1) * 10;
                let mut batch = LiveBatch::default();
                for row in start..start + 10 {
                    let (cols, label) = streamed_row(COLS, 2, 17, row);
                    batch.rows.push(cols);
                    batch.labels.push(label);
                }
                Some(batch)
            } else {
                None
            }
        },
        None,
        &OnlineConfig {
            cache_budget: 1 << 20,
            compact_above_pages: Some(BOUND),
        },
    )
    .unwrap();

    let appends: u64 = outcome.events.iter().map(|e| e.delta_appends).sum();
    let compactions: u64 = outcome.events.iter().map(|e| e.compactions).sum();
    assert!(
        appends >= 8,
        "each arrival epoch seals at least one delta page, saw {appends}"
    );
    assert!(
        compactions >= 1,
        "the page bound must have forced at least one compaction"
    );
    assert!(
        live.page_count() <= BOUND + 1,
        "compaction keeps read amplification bounded: {} pages",
        live.page_count()
    );
    // The counters the events were diffed from agree with the source.
    use std::sync::atomic::Ordering;
    assert_eq!(
        appends,
        live.counters().delta_appends.load(Ordering::Relaxed)
    );
    assert_eq!(
        compactions,
        live.counters().compactions.load(Ordering::Relaxed)
    );
    assert_eq!(live.rows(), 120);
    assert!(outcome.events.iter().all(|e| e.loss.is_finite()));
}
