//! Cross-crate integration tests: data generators → optimizer → engine →
//! convergence bookkeeping, for every statistical model of the paper.

use dimmwitted::{
    AccessMethod, AnalyticsTask, DataReplication, ExecutionMode, ExecutionPlan, ModelKind,
    ModelReplication, RunConfig, Runner,
};
use dw_data::{Dataset, PaperDataset, TaskHint};
use dw_numa::MachineTopology;

fn machine() -> MachineTopology {
    MachineTopology::local2()
}

#[test]
fn every_model_converges_under_its_optimizer_plan() {
    // The paper's Figure 14 pairs: each model on one representative dataset,
    // executed under the plan the cost-based optimizer chooses.
    let cases = [
        (ModelKind::Svm, PaperDataset::Reuters),
        (ModelKind::Lr, PaperDataset::Reuters),
        (ModelKind::Ls, PaperDataset::Forest),
        (ModelKind::Lp, PaperDataset::AmazonLp),
        (ModelKind::Qp, PaperDataset::AmazonQp),
    ];
    let runner = Runner::new(machine());
    for (kind, dataset) in cases {
        let task = AnalyticsTask::from_dataset(&Dataset::generate(dataset, 3), kind);
        let report = runner.run_auto(&task, &RunConfig::quick(6));
        assert!(
            report.final_loss() < task.initial_loss(),
            "{}: loss {} did not improve from {}",
            task.name,
            report.final_loss(),
            task.initial_loss()
        );
        assert!(report.seconds_per_epoch > 0.0);
        assert_eq!(report.trace.epochs(), 6);
    }
}

#[test]
fn interleaved_and_threaded_modes_both_converge() {
    let dataset = Dataset::generate(PaperDataset::Reuters, 5);
    let task = AnalyticsTask::from_dataset(&dataset, ModelKind::Svm);
    let m = machine();
    let runner = Runner::new(m.clone());
    let plan = ExecutionPlan::new(
        &m,
        AccessMethod::RowWise,
        ModelReplication::PerNode,
        DataReplication::Sharding,
    )
    .with_workers(4);
    for mode in [ExecutionMode::Interleaved, ExecutionMode::Threaded] {
        let report = runner.run_with_plan(&task, &plan, &RunConfig::quick(4).with_mode(mode));
        assert!(
            report.final_loss() < 0.8 * task.initial_loss(),
            "{mode:?} failed to converge: {}",
            report.final_loss()
        );
    }
}

#[test]
fn optimizer_plans_match_figure14_for_all_engine_datasets() {
    // The rule-of-thumb surface reproduces Figure 14 verbatim; the engine's
    // `plan_for`/`choose_plan` additionally refines SCD-family tasks onto
    // the sharded locality-first plan the axis-generic sharding path
    // unlocked (the modelled locality win clears the 2x bar on local2).
    let runner = Runner::new(machine());
    let optimizer = dimmwitted::Optimizer::new(machine());
    for dataset in PaperDataset::engine_datasets() {
        let generated = Dataset::generate(dataset, 7);
        for kind in ModelKind::for_hint(generated.hint) {
            let task = AnalyticsTask::from_dataset(&generated, kind);
            let rule = optimizer.rule_of_thumb_plan(&task);
            let plan = runner.plan_for(&task);
            if kind.is_sgd_family() {
                assert_eq!(rule.access, AccessMethod::RowWise, "{}", task.name);
                assert_eq!(
                    rule.model_replication,
                    ModelReplication::PerNode,
                    "{}",
                    task.name
                );
                assert_eq!(plan, rule, "row-wise plans take no refinement");
            } else {
                assert_eq!(rule.access, AccessMethod::ColumnToRow, "{}", task.name);
                assert_eq!(
                    rule.model_replication,
                    ModelReplication::PerMachine,
                    "{}",
                    task.name
                );
                assert_eq!(plan.access, AccessMethod::ColumnToRow, "{}", task.name);
                assert_eq!(
                    plan.model_replication,
                    ModelReplication::PerNode,
                    "refined onto sharded locality-first: {}",
                    task.name
                );
                assert_eq!(plan.data_replication, DataReplication::Sharding);
            }
            assert_eq!(rule.data_replication, DataReplication::FullReplication);
        }
    }
}

#[test]
fn generated_datasets_have_consistent_task_hints() {
    for dataset in PaperDataset::engine_datasets() {
        let generated = Dataset::generate(dataset, 11);
        match generated.hint {
            TaskHint::Supervised => assert_eq!(generated.labels.len(), generated.examples()),
            TaskHint::GraphLp | TaskHint::GraphQp => {
                assert_eq!(generated.vertex_costs.len(), generated.dim())
            }
            _ => panic!("unexpected hint for engine dataset {}", generated.name),
        }
    }
}

#[test]
fn simulated_epoch_time_scales_down_with_more_workers() {
    let dataset = Dataset::generate(PaperDataset::Rcv1, 13);
    let task = AnalyticsTask::from_dataset(&dataset, ModelKind::Svm);
    let m = machine();
    let runner = Runner::new(m.clone());
    let full_plan = ExecutionPlan::new(
        &m,
        AccessMethod::RowWise,
        ModelReplication::PerNode,
        DataReplication::Sharding,
    );
    let solo = runner.run_with_plan(
        &task,
        &full_plan.clone().with_workers(1),
        &RunConfig::quick(1),
    );
    let all_cores = runner.run_with_plan(&task, &full_plan, &RunConfig::quick(1));
    assert!(all_cores.seconds_per_epoch < solo.seconds_per_epoch);
}

#[test]
fn hogwild_plan_reaches_same_quality_as_pernode_given_enough_epochs() {
    // The replication strategies trade hardware efficiency, not final
    // quality: with a fixed epoch budget both reach comparable loss.
    let dataset = Dataset::generate(PaperDataset::Forest, 17);
    let task = AnalyticsTask::from_dataset(&dataset, ModelKind::Svm);
    let m = machine();
    let runner = Runner::new(m.clone());
    let config = RunConfig::quick(8);
    let hogwild = runner.run_with_plan(&task, &ExecutionPlan::hogwild(&m), &config);
    let pernode = runner.run_with_plan(
        &task,
        &ExecutionPlan::new(
            &m,
            AccessMethod::RowWise,
            ModelReplication::PerNode,
            DataReplication::Sharding,
        ),
        &config,
    );
    let ratio = hogwild.final_loss() / pernode.final_loss().max(1e-12);
    assert!(
        (0.5..=2.0).contains(&ratio),
        "final losses should be comparable, got ratio {ratio}"
    );
}
