//! Integration tests for the session API: streaming epochs, early stopping,
//! cooperative cancellation, pluggable executors, and trace parity with the
//! blocking `Engine` facade.

use dimmwitted::{
    AccessMethod, AnalyticsTask, CancelToken, DataReplication, DimmWitted, Engine, EpochEvent,
    ExecutionMode, ExecutionPlan, InterleavedExecutor, ItemScheduler, ModelKind, ModelReplication,
    RunConfig, SpawnPerEpochExecutor, StopReason, ThreadedExecutor,
};
use dw_data::{Dataset, PaperDataset};
use dw_numa::MachineTopology;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn machine() -> MachineTopology {
    MachineTopology::local2()
}

fn svm_task() -> AnalyticsTask {
    AnalyticsTask::from_dataset(
        &Dataset::generate(PaperDataset::Reuters, 42),
        ModelKind::Svm,
    )
}

#[test]
fn streaming_run_stops_early_at_a_loss_target() {
    let task = svm_task();
    let initial = task.initial_loss();
    let target = initial * 0.6;
    let mut stream = DimmWitted::on(machine())
        .task(task)
        .plan_auto()
        .epochs(100)
        .until_loss(target)
        .build()
        .stream();

    let events: Vec<EpochEvent> = stream.by_ref().collect();
    assert_eq!(stream.stop_reason(), Some(StopReason::LossTarget));
    assert!(
        events.len() < 100,
        "should stop well before the 100-epoch budget, ran {}",
        events.len()
    );
    let last = events.last().expect("at least one epoch");
    assert!(last.loss <= target);
    // Every earlier epoch was above the target (the stop is tight).
    for event in &events[..events.len() - 1] {
        assert!(event.loss > target);
    }
    let report = stream.into_report();
    assert_eq!(report.trace.epochs(), events.len());
    assert!(report.final_loss() <= target);
}

#[test]
fn cancellation_mid_run_is_cooperative() {
    let token = CancelToken::new();
    let cancel_at = 3;
    let observed = Arc::new(AtomicUsize::new(0));

    let observer_token = token.clone();
    let observer_count = Arc::clone(&observed);
    let mut stream = DimmWitted::on(machine())
        .task(svm_task())
        .plan_auto()
        .epochs(50)
        .cancel_token(token)
        .on_epoch(move |event| {
            observer_count.fetch_add(1, Ordering::SeqCst);
            if event.epoch == cancel_at {
                observer_token.cancel();
            }
        })
        .build()
        .stream();

    for _ in stream.by_ref() {}
    assert_eq!(stream.stop_reason(), Some(StopReason::Cancelled));
    assert_eq!(stream.trace().epochs(), cancel_at);
    assert_eq!(observed.load(Ordering::SeqCst), cancel_at);
}

#[test]
fn executor_refactor_is_bit_identical_to_the_engine_interleaved_path() {
    // The determinism contract of the refactor: a session with an explicit
    // InterleavedExecutor, the default interleaved session, and the legacy
    // Engine::run facade must all produce bit-identical ConvergenceTraces
    // for a fixed seed — across every model-replication strategy.
    let m = machine();
    let task = svm_task();
    let config = RunConfig::quick(4).with_seed(1234);
    for replication in ModelReplication::all() {
        let plan = ExecutionPlan::new(
            &m,
            AccessMethod::RowWise,
            replication,
            DataReplication::Sharding,
        );
        let engine_report = Engine::new(m.clone()).run(&task, &plan, &config);
        let session_report = DimmWitted::on(m.clone())
            .task(task.clone())
            .plan(plan.clone())
            .config(config.clone())
            .build()
            .run();
        let explicit_report = DimmWitted::on(m.clone())
            .task(task.clone())
            .plan(plan.clone())
            .config(config.clone())
            .executor(Box::new(InterleavedExecutor::new()))
            .build()
            .run();
        // Bit-identical: ConvergenceTrace comparison is exact f64 equality.
        assert_eq!(engine_report.trace, session_report.trace, "{replication}");
        assert_eq!(engine_report.trace, explicit_report.trace, "{replication}");
        assert_eq!(
            engine_report.final_model, session_report.final_model,
            "{replication}"
        );
    }
}

#[test]
fn trace_parity_holds_for_every_model_and_access_method() {
    // Lazy layout materialization and NUMA data shards must not change a
    // single bit of any trace: for all five paper models, under the
    // row-wise method and *both* columnar methods, the Engine facade and an
    // explicit-executor session produce identical traces — including the
    // row-wise Sharding path, which now reads through real per-node shards.
    let m = machine();
    let cases: Vec<(PaperDataset, ModelKind)> = vec![
        (PaperDataset::Reuters, ModelKind::Svm),
        (PaperDataset::Reuters, ModelKind::Lr),
        (PaperDataset::Forest, ModelKind::Ls),
        (PaperDataset::AmazonLp, ModelKind::Lp),
        (PaperDataset::AmazonQp, ModelKind::Qp),
    ];
    let config = RunConfig::quick(2).with_seed(99);
    for (dataset, kind) in cases {
        let task = AnalyticsTask::from_dataset(&Dataset::generate(dataset, 17), kind);
        for access in [
            AccessMethod::RowWise,
            AccessMethod::ColumnWise,
            AccessMethod::ColumnToRow,
        ] {
            for data_replication in [DataReplication::Sharding, DataReplication::FullReplication] {
                let plan =
                    ExecutionPlan::new(&m, access, ModelReplication::PerNode, data_replication)
                        .with_workers(4);
                let engine_report = Engine::new(m.clone()).run(&task, &plan, &config);
                let session_report = DimmWitted::on(m.clone())
                    .task(task.clone())
                    .plan(plan.clone())
                    .config(config.clone())
                    .executor(Box::new(InterleavedExecutor::new()))
                    .build()
                    .run();
                assert_eq!(
                    engine_report.trace, session_report.trace,
                    "{kind} / {access} / {data_replication}"
                );
                assert_eq!(
                    engine_report.final_model, session_report.final_model,
                    "{kind} / {access} / {data_replication}"
                );
                assert!(engine_report.final_loss().is_finite());
            }
        }
    }
}

#[test]
fn locality_first_on_one_group_is_bit_identical_to_round_robin() {
    // The degenerate-case contract of the locality-aware scheduler: with a
    // single locality group (PerMachine) and stealing disabled, owner-
    // directed dealing must collapse to exactly the old global round-robin —
    // same shuffle, same per-worker items, bit-identical traces and models.
    // Axis-generic: the contract holds for row-wise plans (row items) and
    // both columnar methods (column items) alike.
    let m = machine();
    let config = RunConfig::quick(4).with_seed(2024);
    for access in [
        AccessMethod::RowWise,
        AccessMethod::ColumnWise,
        AccessMethod::ColumnToRow,
    ] {
        let base = ExecutionPlan::new(
            &m,
            access,
            ModelReplication::PerMachine,
            DataReplication::Sharding,
        )
        .with_workers(4);
        for task in [
            svm_task(),
            AnalyticsTask::from_dataset(&Dataset::generate(PaperDataset::Forest, 7), ModelKind::Ls),
        ] {
            let locality = DimmWitted::on(m.clone())
                .task(task.clone())
                .plan(base.clone().with_steal_budget(0))
                .config(config.clone())
                .executor(Box::new(InterleavedExecutor::new()))
                .build()
                .run();
            let round_robin = DimmWitted::on(m.clone())
                .task(task.clone())
                .plan(base.clone().with_scheduler(ItemScheduler::RoundRobin))
                .config(config.clone())
                .executor(Box::new(InterleavedExecutor::new()))
                .build()
                .run();
            assert_eq!(locality.trace, round_robin.trace, "{access} {}", task.name);
            assert_eq!(
                locality.final_model, round_robin.final_model,
                "{access} {}",
                task.name
            );
        }
    }
}

#[test]
fn columnar_shard_indirection_never_moves_a_bit() {
    // The determinism contract of the columnar zero-copy shards: under
    // round-robin dealing the per-worker item lists are identical whether or
    // not real column shards exist, so running the *same* assignment once
    // through a sharded replica set — every column read resolving through an
    // owner shard window — and once through full references must produce
    // bit-identical models, for every model family and both columnar
    // methods.
    use dimmwitted::plan::build_epoch_assignment;
    use dimmwitted::{EpochContext, Executor};
    use dw_numa::PlacementPolicy;
    use dw_optim::{AtomicModel, ModelAccess};

    let m = machine();
    let config = RunConfig::quick(1).with_seed(77);
    let cases: Vec<(PaperDataset, ModelKind)> = vec![
        (PaperDataset::Reuters, ModelKind::Svm),
        (PaperDataset::AmazonQp, ModelKind::Qp),
        (PaperDataset::AmazonLp, ModelKind::Lp),
    ];
    for (dataset, kind) in cases {
        let task = AnalyticsTask::from_dataset(&Dataset::generate(dataset, 5), kind);
        for access in [AccessMethod::ColumnWise, AccessMethod::ColumnToRow] {
            let plan = ExecutionPlan::new(
                &m,
                access,
                ModelReplication::PerNode,
                DataReplication::Sharding,
            )
            .with_workers(4)
            .with_scheduler(ItemScheduler::RoundRobin);
            let sharded =
                dimmwitted::DataReplicaSet::build(&plan, &m, PlacementPolicy::NumaAware, &task);
            assert!(sharded.is_sharded(), "{kind}/{access}");
            // A full-reference set of the same group structure (built from
            // the FullReplication variant of the plan).
            let full_plan = ExecutionPlan::new(
                &m,
                access,
                ModelReplication::PerNode,
                DataReplication::FullReplication,
            )
            .with_workers(4);
            let full = dimmwitted::DataReplicaSet::build(
                &full_plan,
                &m,
                PlacementPolicy::NumaAware,
                &task,
            );
            assert!(!full.is_sharded());

            let run = |set: &dimmwitted::DataReplicaSet| {
                let mut executor = InterleavedExecutor::new();
                let replicas: Vec<_> = (0..plan.locality_groups(&m))
                    .map(|_| std::sync::Arc::new(AtomicModel::zeros(task.dim())))
                    .collect();
                let step = task.objective.default_col_step();
                for epoch in 0..3 {
                    // Round-robin dealing ignores the replica set, so both
                    // runs process identical per-worker item lists.
                    let assignment = build_epoch_assignment(
                        &plan,
                        &m,
                        &task.data,
                        epoch,
                        config.seed,
                        None,
                        Some(set),
                    );
                    let ctx = EpochContext {
                        task: &task,
                        plan: &plan,
                        config: &config,
                        machine: &m,
                        assignment: &assignment,
                        replicas: &replicas,
                        data: set,
                        step,
                    };
                    executor.run_epoch(&ctx);
                }
                replicas
                    .iter()
                    .flat_map(|r| r.snapshot())
                    .map(f64::to_bits)
                    .collect::<Vec<u64>>()
            };
            assert_eq!(
                run(&sharded),
                run(&full),
                "{kind}/{access}: shard indirection moved the model"
            );
        }
    }
}

#[test]
fn locality_first_raises_data_locality_on_sharded_groups() {
    // The headline scheduler claim: under row-wise Sharding with 2 locality
    // groups, round-robin dealing leaves ~1/2 of the reads node-local while
    // locality-first dealing (stealing disabled) keeps all of them local.
    let m = machine();
    let base = ExecutionPlan::new(
        &m,
        AccessMethod::RowWise,
        ModelReplication::PerNode,
        DataReplication::Sharding,
    )
    .with_workers(4);
    let locality_of = |plan: ExecutionPlan| {
        let events: Vec<EpochEvent> = DimmWitted::on(machine())
            .task(svm_task())
            .plan(plan)
            .epochs(3)
            .build()
            .stream()
            .collect();
        events.iter().map(|e| e.data_locality).sum::<f64>() / events.len() as f64
    };
    let round_robin = locality_of(base.clone().with_scheduler(ItemScheduler::RoundRobin));
    let locality_first = locality_of(base.with_steal_budget(0));
    assert!(
        (0.3..=0.7).contains(&round_robin),
        "round-robin locality {round_robin} should sit near 1/groups"
    );
    assert!(
        locality_first >= 0.9,
        "locality-first locality {locality_first} should approach 1.0"
    );
}

#[test]
fn columnar_locality_first_raises_data_locality_on_sharded_groups() {
    // The columnar mirror of the headline scheduler claim: under Sharding
    // with 2 locality groups, round-robin dealing leaves ~1/2 of the column
    // reads node-local while locality-first dealing (stealing disabled)
    // keeps all of them local — for both SCD-family access methods, on
    // supervised and graph tasks alike.
    let m = machine();
    let cases: Vec<(PaperDataset, ModelKind)> = vec![
        (PaperDataset::Reuters, ModelKind::Svm),
        (PaperDataset::AmazonQp, ModelKind::Qp),
    ];
    for (dataset, kind) in cases {
        let task = AnalyticsTask::from_dataset(&Dataset::generate(dataset, 23), kind);
        for access in [AccessMethod::ColumnWise, AccessMethod::ColumnToRow] {
            let base = ExecutionPlan::new(
                &m,
                access,
                ModelReplication::PerNode,
                DataReplication::Sharding,
            )
            .with_workers(4);
            let locality_of = |plan: ExecutionPlan| {
                let mut shard_bytes = None;
                let mut stream = DimmWitted::on(m.clone())
                    .task(task.clone())
                    .plan(plan)
                    .epochs(3)
                    .build()
                    .stream();
                let events: Vec<EpochEvent> = stream.by_ref().collect();
                let replicas = stream.data_replicas();
                if replicas.is_sharded() {
                    shard_bytes = Some(replicas.total_bytes());
                }
                (
                    events.iter().map(|e| e.data_locality).sum::<f64>() / events.len() as f64,
                    shard_bytes,
                )
            };
            let (round_robin, _) =
                locality_of(base.clone().with_scheduler(ItemScheduler::RoundRobin));
            let (locality_first, shard_bytes) = locality_of(base.with_steal_budget(0));
            assert!(
                (0.3..=0.7).contains(&round_robin),
                "{kind}/{access}: round-robin locality {round_robin} should sit near 1/groups"
            );
            assert!(
                locality_first >= 0.9,
                "{kind}/{access}: locality-first locality {locality_first} should approach 1.0"
            );
            assert_eq!(
                shard_bytes,
                Some(0),
                "{kind}/{access}: column shards are zero-copy"
            );
        }
    }
}

#[test]
fn threaded_executors_share_the_session_surface() {
    // Both threaded mechanisms run through the same builder and converge;
    // the persistent pool is the default for ExecutionMode::Threaded.
    let task = svm_task();
    let initial = task.initial_loss();
    let plan = ExecutionPlan::hogwild(&machine()).with_workers(4);
    for executor in [
        Box::new(ThreadedExecutor::new()) as Box<dyn dimmwitted::Executor>,
        Box::new(SpawnPerEpochExecutor::new()),
    ] {
        let report = DimmWitted::on(machine())
            .task(task.clone())
            .plan(plan.clone())
            .epochs(3)
            .executor(executor)
            .build()
            .run();
        assert_eq!(report.trace.epochs(), 3);
        assert!(report.final_loss() < initial);
    }
    let default_threaded = DimmWitted::on(machine())
        .task(task.clone())
        .plan(plan)
        .epochs(2)
        .mode(ExecutionMode::Threaded)
        .build()
        .stream();
    assert_eq!(default_threaded.executor_name(), "threaded-pool");
    let report = default_threaded.run_to_end();
    assert!(report.final_loss() < initial);
}

#[test]
fn pernode_threaded_session_terminates() {
    // Regression for the seed deadlock: the PerNode asynchronous averaging
    // actor must observe worker completion and exit (the seed signalled it
    // only after the thread scope joined, which never happened).
    let plan = ExecutionPlan::new(
        &machine(),
        AccessMethod::RowWise,
        ModelReplication::PerNode,
        DataReplication::Sharding,
    )
    .with_workers(4);
    for executor in [
        Box::new(ThreadedExecutor::new()) as Box<dyn dimmwitted::Executor>,
        Box::new(SpawnPerEpochExecutor::new()),
    ] {
        let report = DimmWitted::on(machine())
            .task(svm_task())
            .plan(plan.clone())
            .epochs(2)
            .executor(executor)
            .build()
            .run();
        assert_eq!(report.trace.epochs(), 2);
    }
}

#[test]
fn concurrent_server_sessions_match_their_solo_traces() {
    // The multi-tenant determinism contract: admitting two sessions onto
    // one server — one shared worker pool, epochs time-sliced by the fair
    // scheduler — must not move a single bit of either trace relative to
    // running each session alone.  Checked for both execution mechanisms:
    // deterministic interleaving, and real threads on the shared pool with
    // PerCore replication (each worker owns its replica, so threading
    // introduces no races).
    use dw_serve::{Execution, Server, SessionSpec};

    let m = machine();
    let specs: Vec<(&str, AnalyticsTask, u64)> = vec![
        ("svm", svm_task(), 11),
        (
            "lr",
            AnalyticsTask::from_dataset(
                &Dataset::generate(PaperDataset::Reuters, 42),
                ModelKind::Lr,
            ),
            22,
        ),
    ];
    for execution in [Execution::Interleaved, Execution::SharedPool] {
        let plan = ExecutionPlan::new(
            &m,
            AccessMethod::RowWise,
            ModelReplication::PerCore,
            DataReplication::Sharding,
        )
        .with_workers(4);

        // Solo baselines, each owning the whole machine.
        let solo: Vec<_> = specs
            .iter()
            .map(|(_, task, seed)| {
                let builder = DimmWitted::on(m.clone())
                    .task(task.clone())
                    .plan(plan.clone())
                    .epochs(5)
                    .seed(*seed);
                let builder = match execution {
                    Execution::SharedPool => builder.mode(ExecutionMode::Threaded),
                    Execution::Interleaved => builder,
                };
                builder.build().run().trace
            })
            .collect();

        // The same two sessions, concurrent tenants of one server.
        let server = Server::builder(m.clone())
            .pool_workers(4)
            .trainers(2)
            .build();
        let handles: Vec<_> = specs
            .iter()
            .map(|(name, task, seed)| {
                server.admit(
                    SessionSpec::new(*name, task.clone())
                        .plan(plan.clone())
                        .epochs(5)
                        .seed(*seed)
                        .execution(execution),
                )
            })
            .collect();
        for (handle, solo_trace) in handles.iter().zip(&solo) {
            let (trace, reason) = handle.wait();
            assert_eq!(reason, StopReason::EpochBudget);
            assert_eq!(
                &trace,
                solo_trace,
                "{} under {execution:?}: concurrent trace diverged from solo",
                handle.name()
            );
        }
        server.shutdown();
    }
}

#[test]
fn threaded_auto_steal_latency_feedback_stays_within_the_derived_cap() {
    // The latency-feedback loop end to end: 3 workers over 2 locality
    // groups force cross-group steals, a threaded session times each
    // epoch's stolen batches against the critical path, and the retuned
    // budget must never leave [0, cap] — cap being the derived economic
    // bound.  Stolen items are credited to the thief's group, so measured
    // locality stays at the optimizer's modelled 1.0 the whole way.
    let m = machine();
    let task = svm_task();
    let plan = ExecutionPlan::new(
        &m,
        AccessMethod::RowWise,
        ModelReplication::PerNode,
        DataReplication::Sharding,
    )
    .with_workers(3);
    let cap = dimmwitted::plan::tuned_steal_budget(&plan, &m, task.examples());
    assert!(cap > 0, "imbalanced staffing derives a non-zero cap");
    let mut stream = DimmWitted::on(m.clone())
        .task(task)
        .plan(plan)
        .epochs(6)
        .auto_steal_budget()
        .executor(Box::new(ThreadedExecutor::new()))
        .build()
        .stream();
    let mut first_steals = None;
    loop {
        // The budget the *next* epoch will run with — inspected every
        // round-trip so no intermediate retune can escape the cap.
        let budget = match stream.plan().scheduler {
            ItemScheduler::LocalityFirst { steal_budget } => steal_budget,
            _ => unreachable!("auto-steal keeps the locality-first scheduler"),
        };
        assert!(
            budget <= cap,
            "budget {budget} exceeded the derived cap {cap}"
        );
        let Some(event) = stream.next() else { break };
        first_steals.get_or_insert(event.steals);
        assert!(event.steals <= cap, "per-epoch steals stay capped");
        assert_eq!(
            event.data_locality, 1.0,
            "thief-credited locality (epoch {})",
            event.epoch
        );
        // The threaded mechanism measures: finite non-negative steal time
        // and idle fraction, with idle bounded by construction.
        assert!(event.steal_seconds >= 0.0 && event.steal_seconds.is_finite());
        assert!((0.0..=1.0).contains(&event.worker_idle));
    }
    assert!(
        first_steals.unwrap() > 0,
        "the derived budget is spent on the imbalance"
    );
}

#[test]
fn memory_binding_never_moves_a_trace() {
    // Physical page binding relocates pages, never data: a session built
    // with the bind pass on and one with it off (the bench's control arm)
    // must produce bit-identical traces and models.  On single-node or
    // feature-off hosts the binder is inert either way, which makes this
    // exact check meaningful everywhere — the multi-node win is measured
    // (not asserted) by bench_numa.
    let m = machine();
    let task = svm_task();
    let plan = ExecutionPlan::new(
        &m,
        AccessMethod::RowWise,
        ModelReplication::PerNode,
        DataReplication::Sharding,
    )
    .with_workers(4);
    let run = |bind: bool| {
        DimmWitted::on(m.clone())
            .task(task.clone())
            .plan(plan.clone())
            .epochs(3)
            .seed(7)
            .bind_memory(bind)
            .build()
            .run()
    };
    let bound = run(true);
    let unbound = run(false);
    assert_eq!(bound.trace, unbound.trace);
    assert_eq!(bound.final_model, unbound.final_model);
}

#[test]
fn convergence_stop_and_observers_compose() {
    let seen = Arc::new(AtomicUsize::new(0));
    let count = Arc::clone(&seen);
    let mut stream = DimmWitted::on(machine())
        .task(svm_task())
        .plan_auto()
        .epochs(200)
        .until_converged(1e-3)
        .on_epoch(move |_| {
            count.fetch_add(1, Ordering::SeqCst);
        })
        .build()
        .stream();
    for _ in stream.by_ref() {}
    assert_eq!(stream.stop_reason(), Some(StopReason::Converged));
    assert!(stream.trace().epochs() < 200);
    assert_eq!(seen.load(Ordering::SeqCst), stream.trace().epochs());
}
