//! Smoke-level integration tests of the figure-regeneration harness: every
//! figure function produces a non-empty table with the expected rows, and
//! the qualitative directions the paper reports hold at reduced scale.

use dimmwitted::ModelKind;
use dw_bench::{figures, Scale};
use dw_data::PaperDataset;

fn scale() -> Scale {
    Scale::quick()
}

#[test]
fn fig07_tables() {
    let tables = figures::fig07(scale());
    assert_eq!(tables.len(), 2);
    assert_eq!(tables[0].len(), 4);
    assert_eq!(tables[1].len(), 7);
    // The cost ratio column increases as rows get sparser (first rows are the
    // most subsampled ones).
    let first: f64 = tables[1].rows[0][1].parse().unwrap();
    let last: f64 = tables[1].rows.last().unwrap()[1].parse().unwrap();
    assert!(first > last);
}

#[test]
fn fig08_pernode_is_faster_per_epoch_than_permachine() {
    let tables = figures::fig08(scale());
    let time = |strategy: &str| -> f64 {
        tables[1]
            .cell(strategy, "seconds/epoch")
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(time("PerNode") < time("PerMachine"));
    assert!(time("PerCore") <= time("PerNode") * 1.05);
}

#[test]
fn fig09_full_replication_slows_with_more_nodes() {
    // Figure 9(b): FullReplication's per-epoch *slowdown relative to
    // Sharding on the same machine* tracks the node count (each node
    // processes a full copy); absolute epoch time still shrinks with the
    // larger machines' extra cores.
    let tables = figures::fig09(scale());
    let seconds = |machine: &str, column: &str| -> f64 {
        tables[1].cell(machine, column).unwrap().parse().unwrap()
    };
    let slowdown = |machine: &str| -> f64 {
        seconds(machine, "FullReplication s/epoch") / seconds(machine, "Sharding s/epoch")
    };
    assert!(slowdown("local8") > slowdown("local2"));
}

#[test]
fn fig10_and_fig14_shapes() {
    assert_eq!(figures::fig10(scale()).len(), 10);
    let fig14 = figures::fig14(scale());
    assert_eq!(
        fig14.cell("SVM(reuters)", "access method"),
        Some("row-wise")
    );
    assert_eq!(
        fig14.cell("LP(amazon-lp)", "access method"),
        Some("column-to-row")
    );
}

#[test]
fn fig11_subset_has_all_system_columns() {
    let cases = [
        (ModelKind::Svm, PaperDataset::Reuters),
        (ModelKind::Lp, PaperDataset::AmazonLp),
    ];
    let tables = figures::fig11_cases(&cases, scale());
    assert_eq!(tables.len(), 2);
    for table in &tables {
        assert_eq!(table.len(), 2);
        assert_eq!(table.headers.len(), 6);
    }
}

#[test]
fn fig13_dimmwitted_has_highest_parallel_sum_throughput() {
    let table = figures::fig13(scale());
    let throughput =
        |system: &str| -> f64 { table.cell(system, "Parallel Sum").unwrap().parse().unwrap() };
    let dw = throughput("DimmWitted");
    for other in ["Hogwild!", "GraphLab", "GraphChi", "MLlib"] {
        assert!(dw > throughput(other), "DimmWitted should beat {other}");
    }
}

#[test]
fn fig15_ratio_grows_with_sockets() {
    let table = figures::fig15(scale());
    let ratio =
        |machine: &str| -> f64 { table.cell(machine, "SVM (RCV1)").unwrap().parse().unwrap() };
    assert!(ratio("local8") > ratio("local2"));
}

#[test]
fn fig17_extensions_favour_dimmwitted_choice() {
    let tables = figures::fig17(scale());
    let extension = &tables[1];
    for row in &extension.rows {
        let classic: f64 = row[1].parse().unwrap();
        let dimmwitted: f64 = row[2].parse().unwrap();
        assert!(dimmwitted > classic, "{}", row[0]);
    }
}

#[test]
fn fig20_percore_scales_best_and_delite_saturates() {
    let table = figures::fig20(scale());
    let last = table.rows.last().unwrap();
    let percore: f64 = last[1].parse().unwrap();
    let permachine: f64 = last[3].parse().unwrap();
    let delite: f64 = last[4].parse().unwrap();
    assert!(percore >= permachine);
    assert!(delite < percore);
    // Delite's speed-up at 12 threads equals its speed-up at 6 threads.
    let at6 = &table.rows[3];
    assert_eq!(at6[0], "6");
    let delite_at6: f64 = at6[4].parse().unwrap();
    assert!((delite - delite_at6).abs() < 1e-9);
}

#[test]
fn fig21_time_grows_roughly_linearly_with_scale() {
    let table = figures::fig21(scale());
    let seconds: Vec<f64> = table.rows.iter().map(|r| r[3].parse().unwrap()).collect();
    assert!(seconds.windows(2).all(|w| w[1] > w[0]));
    // 100% scale vs 1% scale should be within a factor of a few of 100x.
    let growth = seconds[3] / seconds[0];
    assert!((20.0..=500.0).contains(&growth), "growth {growth}");
}

#[test]
fn fig22_importance_sampling_table_lists_all_strategies() {
    let table = figures::fig22(scale());
    assert_eq!(table.len(), 4);
    assert!(table.rows.iter().any(|r| r[0].starts_with("Importance")));
}

#[test]
fn appendix_tables_report_expected_directions() {
    let tables = figures::appendix(scale());
    assert_eq!(tables.len(), 3);
    // NUMA-aware placement reads locally everywhere; OS placement does not.
    let placement = &tables[0];
    let os: f64 = placement
        .cell("OsDefault", "local read fraction")
        .unwrap()
        .parse()
        .unwrap();
    let numa: f64 = placement
        .cell("NumaAware", "local read fraction")
        .unwrap()
        .parse()
        .unwrap();
    assert!(numa > os);
    // Column-major layout misses far more under a row-wise scan.
    let layout = &tables[2];
    let row_major: f64 = layout
        .cell("row-major", "L1-sized cache misses")
        .unwrap()
        .parse()
        .unwrap();
    let col_major: f64 = layout
        .cell("column-major", "L1-sized cache misses")
        .unwrap()
        .parse()
        .unwrap();
    assert!(col_major > 4.0 * row_major);
}
