//! Memory-footprint regression tests for the unified storage layer.
//!
//! The contract under test: a dataset driven with a single access method
//! allocates only one sparse layout.  The planner records its layout
//! decision in the `ExecutionPlan`; the session materializes exactly that;
//! nothing else may appear as a side effect of running epochs, computing
//! losses, collecting statistics, or building NUMA shards.

use dimmwitted::{
    AccessMethod, AnalyticsTask, DataReplication, DimmWitted, EpochEvent, ExecutionPlan,
    LayoutDecision, ModelKind, ModelReplication, Optimizer, RunConfig,
};
use dw_data::clueweb::clueweb_like;
use dw_data::{Dataset, PaperDataset};
use dw_matrix::{ColAccess, DataMatrix, TempSpillDir};
use dw_numa::MachineTopology;
use dw_optim::TaskData;

fn machine() -> MachineTopology {
    MachineTopology::local2()
}

#[test]
fn row_wise_session_never_materializes_the_csc_view() {
    // A full session — stats for the simulator, epoch assignments, real
    // epochs, per-epoch loss evaluation — driven row-wise end to end.
    let dataset = Dataset::generate(PaperDataset::Reuters, 77);
    let task = AnalyticsTask::from_dataset(&dataset, ModelKind::Svm);
    let matrix = task.data.matrix.clone();
    assert!(
        !matrix.csr_materialized() && !matrix.csc_materialized(),
        "nothing may be materialized before the plan decides"
    );

    let plan = ExecutionPlan::new(
        &machine(),
        AccessMethod::RowWise,
        ModelReplication::PerNode,
        DataReplication::FullReplication,
    )
    .with_workers(4);
    assert_eq!(plan.layout, LayoutDecision::Csr);
    let report = DimmWitted::on(machine())
        .task(task)
        .plan(plan)
        .config(RunConfig::quick(3))
        .build()
        .run();
    assert_eq!(report.trace.epochs(), 3);

    assert!(matrix.csr_materialized(), "the plan's layout is resident");
    assert!(
        !matrix.csc_materialized(),
        "a row-wise-only task must never materialize the CSC view"
    );
    assert!(!matrix.dense_materialized());
}

#[test]
fn row_wise_sharded_session_keeps_shards_row_only() {
    let dataset = Dataset::generate(PaperDataset::Reuters, 78);
    let task = AnalyticsTask::from_dataset(&dataset, ModelKind::Svm);
    let matrix = task.data.matrix.clone();
    let plan = ExecutionPlan::new(
        &machine(),
        AccessMethod::RowWise,
        ModelReplication::PerNode,
        DataReplication::Sharding,
    )
    .with_workers(4);
    let mut stream = DimmWitted::on(machine())
        .task(task)
        .plan(plan)
        .config(RunConfig::quick(2))
        .build()
        .stream();
    for event in stream.by_ref() {
        // Locality-first dealing with stealing disabled keeps every sharded
        // read in the owning group (the acceptance bar is >= 0.9; owner-
        // directed dealing delivers exactly 1.0).
        assert!(
            event.data_locality >= 0.9,
            "sharded locality {} below the locality-first bar",
            event.data_locality
        );
    }
    let replicas = stream.data_replicas();
    assert!(replicas.is_sharded());
    for g in 0..replicas.len() {
        let shard = replicas.replica(g).data();
        assert!(shard.matrix.csr_materialized());
        assert!(
            !shard.matrix.csc_materialized(),
            "row shards must never carry a column layout"
        );
        assert_eq!(
            shard.matrix.resident_bytes(),
            0,
            "row shards are zero-copy views into the shared CSR"
        );
    }
    assert_eq!(
        replicas.total_bytes(),
        0,
        "a sharded replica set duplicates no row bytes"
    );
    assert!(!matrix.csc_materialized());
}

#[test]
fn columnar_sharded_session_keeps_shards_zero_copy() {
    // The column mirror of the row shard-bytes pin: a ColumnToRow Sharding
    // session builds real per-node column shards — zero-copy windows over
    // the one shared CSC — and locality-first dealing keeps every column
    // read in the owning group.
    let dataset = Dataset::generate(PaperDataset::AmazonQp, 86);
    let task = AnalyticsTask::from_dataset(&dataset, ModelKind::Qp);
    let matrix = task.data.matrix.clone();
    let plan = ExecutionPlan::new(
        &machine(),
        AccessMethod::ColumnToRow,
        ModelReplication::PerNode,
        DataReplication::Sharding,
    )
    .with_workers(4);
    let mut stream = DimmWitted::on(machine())
        .task(task)
        .plan(plan)
        .config(RunConfig::quick(2))
        .build()
        .stream();
    for event in stream.by_ref() {
        assert!(
            event.data_locality >= 0.9,
            "sharded columnar locality {} below the locality-first bar",
            event.data_locality
        );
    }
    let replicas = stream.data_replicas();
    assert!(replicas.is_sharded());
    assert_eq!(replicas.shard_axis(), Some(dw_matrix::Axis::Cols));
    for g in 0..replicas.len() {
        let shard = replicas.replica(g).data();
        assert!(shard.matrix.csc_materialized(), "served by the shared CSC");
        assert!(
            !shard.matrix.csr_materialized(),
            "column shards must never carry an owned row layout"
        );
        assert!(shard.matrix.col_window().is_some());
        assert_eq!(
            shard.matrix.resident_bytes(),
            0,
            "column shards are zero-copy views into the shared CSC"
        );
    }
    assert_eq!(
        replicas.total_bytes(),
        0,
        "a column-sharded replica set duplicates no element bytes"
    );
    // The base holds exactly the columnar session's layouts (CSC for the
    // column walk + CSR for the row-wise loss pass), nothing more.
    assert!(matrix.csc_materialized());
    assert!(matrix.csr_materialized());
    assert!(!matrix.dense_materialized());
}

#[test]
fn compacting_the_source_reclaims_sixteen_bytes_per_nnz() {
    // The compaction contract: once the session materialized its compressed
    // layout, dropping the canonical COO triplets reclaims exactly their 16
    // bytes per stored non-zero and leaves residency at the layout alone.
    let dataset = Dataset::generate(PaperDataset::Reuters, 82);
    let task = AnalyticsTask::from_dataset(&dataset, ModelKind::Svm);
    let matrix = task.data.matrix.clone();
    let nnz = matrix.stats().nnz;
    let source_bytes = matrix.resident_bytes();
    assert_eq!(source_bytes, 16 * nnz, "COO source is 16 bytes per triplet");

    let plan = ExecutionPlan::new(
        &machine(),
        AccessMethod::RowWise,
        ModelReplication::PerNode,
        DataReplication::Sharding,
    )
    .with_workers(4);
    let report = DimmWitted::on(machine())
        .task(task)
        .plan(plan)
        .config(RunConfig::quick(2))
        .compact_source()
        .build()
        .run();
    assert_eq!(report.trace.epochs(), 2);
    assert!(!matrix.has_coo_source(), "triplets were dropped");
    assert_eq!(
        matrix.resident_bytes(),
        matrix.csr().size_bytes(),
        "residency after compaction is the CSR layout alone"
    );
    // Reads after compaction still work, including layouts that must now
    // convert from the resident CSR.
    assert!(matrix.csc().cols() > 0);
}

#[test]
fn column_driven_data_never_materializes_the_csr_view() {
    // The vice-versa direction, at the storage layer: a consumer that only
    // ever walks columns — the pure column-wise access pattern — must not
    // allocate the row layout.  (A full session always evaluates the loss
    // row-wise, so the pure case is exercised against the matrix itself.)
    let dataset = Dataset::generate(PaperDataset::AmazonLp, 79);
    let matrix: DataMatrix = dataset.matrix.clone();
    assert!(matrix.stats().nnz > 0, "stats come from the canonical form");
    let mut checksum = 0.0;
    for j in 0..matrix.cols() {
        checksum += matrix.col(j).norm2_squared();
        let _ = matrix.col_nnz(j);
    }
    assert!(checksum > 0.0);
    assert!(matrix.csc_materialized());
    assert!(
        !matrix.csr_materialized(),
        "a column-wise-only consumer must never materialize the CSR view"
    );
}

#[test]
fn single_access_method_allocates_one_sparse_layout_of_bytes() {
    // Quantitative version: after a row-wise run, the resident footprint is
    // exactly source + CSR — not source + CSR + CSC as the eager seed held.
    let dataset = Dataset::generate(PaperDataset::Reuters, 80);
    let task = AnalyticsTask::from_dataset(&dataset, ModelKind::Lr);
    let matrix = task.data.matrix.clone();
    let source_bytes = matrix.resident_bytes();
    let plan = ExecutionPlan::new(
        &machine(),
        AccessMethod::RowWise,
        ModelReplication::PerMachine,
        DataReplication::FullReplication,
    )
    .with_workers(4);
    let _ = DimmWitted::on(machine())
        .task(task)
        .plan(plan)
        .config(RunConfig::quick(2))
        .build()
        .run();
    let resident = matrix.resident_bytes();
    let csr_bytes = matrix.csr().size_bytes();
    assert_eq!(
        resident,
        source_bytes + csr_bytes,
        "row-wise residency = COO source + CSR, nothing more"
    );
}

#[test]
fn optimizer_records_the_layout_decision_in_the_plan() {
    let optimizer = Optimizer::new(machine());

    // Text / dense datasets → row-wise → CSR only (Figure 14 left column).
    let reuters = Dataset::generate(PaperDataset::Reuters, 81);
    let svm = AnalyticsTask::from_dataset(&reuters, ModelKind::Svm);
    let plan = optimizer.choose_plan(&svm);
    assert_eq!(plan.access, AccessMethod::RowWise);
    assert_eq!(plan.layout, LayoutDecision::Csr);

    // Graph datasets → column-to-row → CSC plus the row views the S(j)
    // expansion reads (Figure 14 right column).
    let amazon = Dataset::generate(PaperDataset::AmazonQp, 81);
    let qp = AnalyticsTask::from_dataset(&amazon, ModelKind::Qp);
    let plan = optimizer.choose_plan(&qp);
    assert_eq!(plan.access, AccessMethod::ColumnToRow);
    assert_eq!(plan.layout, LayoutDecision::CsrAndCsc);
    assert!(plan.describe().contains("csr+csc"));

    // The planner never chose anything before stats were consulted, and
    // stats alone materialized nothing.
    assert!(!reuters.matrix.csc_materialized());
    assert!(!amazon.matrix.csr_materialized());
    assert!(!amazon.matrix.csc_materialized());
}

#[test]
fn layout_decision_covers_the_access_method() {
    let m = machine();
    let plan = ExecutionPlan::new(
        &m,
        AccessMethod::ColumnWise,
        ModelReplication::PerMachine,
        DataReplication::Sharding,
    );
    assert_eq!(plan.layout, LayoutDecision::Csc);
    assert!(!plan.layout.includes_rows());
    assert!(plan.layout.includes_cols());
    // Refining to a superset is allowed…
    let widened = plan.clone().with_layout(LayoutDecision::CsrAndCsc);
    assert_eq!(widened.layout, LayoutDecision::CsrAndCsc);
    // …and the required layouts of every access method are consistent.
    for access in AccessMethod::all() {
        let required = LayoutDecision::for_access(access);
        match access {
            AccessMethod::RowWise => assert_eq!(required, LayoutDecision::Csr),
            AccessMethod::ColumnWise => assert_eq!(required, LayoutDecision::Csc),
            AccessMethod::ColumnToRow => assert_eq!(required, LayoutDecision::CsrAndCsc),
        }
    }
}

#[test]
#[should_panic(expected = "does not cover")]
fn dropping_a_required_layout_panics() {
    let plan = ExecutionPlan::new(
        &machine(),
        AccessMethod::ColumnToRow,
        ModelReplication::PerMachine,
        DataReplication::Sharding,
    );
    let _ = plan.with_layout(LayoutDecision::Csc);
}

/// The out-of-core acceptance contract: a session whose layout estimate
/// exceeds the memory budget spills its source, runs to convergence with
/// peak tracked resident source + page-cache bytes within the budget, and
/// produces a convergence trace bit-identical to the fully in-memory run at
/// every epoch.
#[test]
fn out_of_core_session_stays_within_budget_with_a_bit_identical_trace() {
    let data = clueweb_like(0.05, 9);
    let sharded_ls = |matrix: DataMatrix| {
        AnalyticsTask::new(
            "LS(clueweb)",
            TaskData::supervised(matrix, data.labels.clone()),
            ModelKind::Ls,
        )
    };
    let plan = ExecutionPlan::new(
        &machine(),
        AccessMethod::RowWise,
        ModelReplication::PerNode,
        DataReplication::Sharding,
    )
    .with_workers(4);
    let epochs = 8;

    // Reference: the fully in-memory run.
    let in_memory = sharded_ls(DataMatrix::from_coo(data.matrix.clone()));
    let reference = DimmWitted::on(machine())
        .task(in_memory)
        .plan(plan.clone())
        .config(RunConfig::quick(epochs))
        .until_converged(1e-9)
        .build()
        .run();

    // Out-of-core: same task bytes, but a budget far below the layout
    // estimate forces the paged arm.
    let matrix = DataMatrix::from_coo(data.matrix.clone());
    let handle = matrix.clone();
    let layout_estimate = LayoutDecision::Csr.estimated_bytes(matrix.stats());
    let budget = layout_estimate / 4;
    assert!(layout_estimate > budget);
    let spill_dir = TempSpillDir::new("dw-footprint-ooc").unwrap();
    let mut events: Vec<EpochEvent> = Vec::new();
    let mut stream = DimmWitted::on(machine())
        .task(sharded_ls(matrix))
        .plan(plan)
        .config(RunConfig::quick(epochs))
        .until_converged(1e-9)
        .memory_budget(budget)
        .spill_dir(spill_dir.path())
        .build()
        .stream();
    assert_eq!(stream.plan().residency.budget_bytes(), Some(budget));
    assert!(
        stream.plan().residency.prefetch_depth() >= 1,
        "the widened arm carries an optimizer-chosen prefetch depth"
    );
    for event in stream.by_ref() {
        events.push(event);
    }

    // The source was spilled: no resident COO, and the peak of tracked
    // resident source + cache bytes stayed within the budget.
    assert!(handle.is_paged());
    assert!(!handle.has_coo_source());
    let ooc = handle.ooc_stats().expect("paged matrix tracks cache stats");
    assert!(ooc.faults > 0, "layouts streamed from disk pages");
    assert!(
        ooc.peak_resident_bytes <= budget,
        "peak source+cache bytes {} exceed the budget {}",
        ooc.peak_resident_bytes,
        budget
    );
    assert_eq!(
        ooc.resident_bytes, 0,
        "pages released after materialization"
    );

    // Bit-identical convergence at every epoch.
    assert_eq!(events.len(), reference.trace.points.len());
    for (event, point) in events.iter().zip(&reference.trace.points) {
        assert_eq!(
            event.loss.to_bits(),
            point.loss.to_bits(),
            "epoch {} loss diverged from the in-memory run",
            event.epoch
        );
    }
    // And the spill file disappears with the storage handle.
    let spill_path = spill_dir.path().to_path_buf();
    drop(stream);
    drop(handle);
    let leftovers: Vec<_> = std::fs::read_dir(&spill_path)
        .map(|entries| entries.filter_map(|e| e.ok()).collect())
        .unwrap_or_default();
    assert!(
        leftovers.is_empty(),
        "spill files must not outlive the storage handle: {leftovers:?}"
    );
}

#[test]
fn dense_matrices_take_the_dense_arm_and_skip_sparse_indices() {
    // ROADMAP item: Music/Forest-shaped dense matrices route through the
    // dense row-major backend instead of paying 4 bytes of index per
    // element through the sparse kernels.
    let music = Dataset::generate(PaperDataset::Music, 83);
    let task = AnalyticsTask::from_dataset(&music, ModelKind::Svm);
    let matrix = task.data.matrix.clone();
    let optimizer = Optimizer::new(machine());
    let plan = optimizer.choose_plan(&task);
    assert_eq!(plan.access, AccessMethod::RowWise);
    assert_eq!(plan.layout, LayoutDecision::Dense, "dense data, dense arm");

    let report = DimmWitted::on(machine())
        .task(task)
        .plan(plan)
        .config(RunConfig::quick(3))
        .build()
        .run();
    assert_eq!(report.trace.epochs(), 3);
    assert!(
        matrix.dense_rows_materialized(),
        "the dense store is resident"
    );
    assert!(
        !matrix.csr_materialized(),
        "the dense arm must not build CSR next to the dense store"
    );
    assert!(!matrix.csc_materialized());

    // The dense store holds 8 bytes per element plus one shared index
    // arange — strictly below the CSR bytes for the same fully dense data.
    let stats = matrix.stats();
    let dense_bytes = stats.dense_bytes + stats.cols * 4;
    assert!(dense_bytes < stats.sparse_bytes);
    assert_eq!(matrix.resident_bytes(), 16 * stats.nnz + dense_bytes);
}

#[test]
fn importance_sampling_on_the_dense_arm_reads_the_dense_store() {
    // Leverage scores are generic over RowAccess: an Importance plan on
    // dense data must feed them from the dense row store, not materialize
    // CSR beside it.
    let music = Dataset::generate(PaperDataset::Music, 85);
    let task = AnalyticsTask::from_dataset(&music, ModelKind::Ls);
    let matrix = task.data.matrix.clone();
    let plan = ExecutionPlan::new(
        &machine(),
        AccessMethod::RowWise,
        ModelReplication::PerNode,
        DataReplication::Importance { epsilon: 0.5 },
    )
    .with_workers(4)
    .with_layout(LayoutDecision::Dense);
    let report = DimmWitted::on(machine())
        .task(task)
        .plan(plan)
        .config(RunConfig::quick(2))
        .build()
        .run();
    assert_eq!(report.trace.epochs(), 2);
    assert!(matrix.dense_rows_materialized());
    assert!(
        !matrix.csr_materialized(),
        "leverage scores must not force the sparse row layout"
    );
}

#[test]
fn dense_arm_traces_match_the_sparse_route_bit_for_bit() {
    // The safety contract of the Dense arm: row views off the dense store
    // are bit-identical to CSR views of a fully dense matrix, so the
    // convergence trace cannot move.
    let music = Dataset::generate(PaperDataset::Music, 84);
    let plan_dense =
        Optimizer::new(machine()).choose_plan(&AnalyticsTask::from_dataset(&music, ModelKind::Lr));
    assert_eq!(plan_dense.layout, LayoutDecision::Dense);
    let plan_csr = plan_dense.clone().with_layout(LayoutDecision::Csr);

    let run = |plan: ExecutionPlan| {
        let fresh = Dataset::generate(PaperDataset::Music, 84);
        let task = AnalyticsTask::from_dataset(&fresh, ModelKind::Lr);
        DimmWitted::on(machine())
            .task(task)
            .plan(plan)
            .config(RunConfig::quick(4))
            .build()
            .run()
    };
    let dense = run(plan_dense);
    let sparse = run(plan_csr);
    assert_eq!(dense.trace.points.len(), sparse.trace.points.len());
    for (a, b) in dense.trace.points.iter().zip(&sparse.trace.points) {
        assert_eq!(a.loss.to_bits(), b.loss.to_bits());
    }
}
