//! Integration tests for the multi-tenant serving subsystem: snapshot
//! consistency under live training, layout-handle reuse across tenants, and
//! the batched prediction front-end.

use dimmwitted::{
    AccessMethod, AnalyticsTask, DataReplication, ExecutionPlan, ModelKind, ModelReplication,
};
use dw_data::{Dataset, PaperDataset};
use dw_matrix::SparseVector;
use dw_numa::MachineTopology;
use dw_serve::{Execution, Frontend, Server, SessionSpec, Ticket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn machine() -> MachineTopology {
    MachineTopology::local2()
}

fn percore_plan() -> ExecutionPlan {
    ExecutionPlan::new(
        &machine(),
        AccessMethod::RowWise,
        ModelReplication::PerCore,
        DataReplication::Sharding,
    )
    .with_workers(4)
}

#[test]
fn predictors_never_observe_a_torn_model_during_training() {
    // The snapshot-consistency contract: hammer the lock-free read path
    // from several threads for the whole lifetime of a training session.
    // Every loaded snapshot must pass its checksum (stamped over version,
    // epoch, and every model bit at publication), versions must never run
    // backwards within a reader, and the score computed from a snapshot
    // must be reproducible from its own immutable model vector.
    let dataset = Dataset::generate(PaperDataset::Reuters, 9);
    let task = AnalyticsTask::from_dataset(&dataset, ModelKind::Svm);
    let server = Server::builder(machine()).pool_workers(4).build();
    let session = server.admit(
        SessionSpec::new("stress", task)
            .plan(percore_plan())
            .epochs(40)
            .seed(9),
    );
    let predictor = session.predictor();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let predictor = predictor.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let input = SparseVector::from_parts(vec![r, 5 + r], vec![1.0, -2.0]);
                let mut last_version = 0;
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if let Some(snapshot) = predictor.snapshot() {
                        assert!(
                            snapshot.is_consistent(),
                            "torn snapshot at v{}",
                            snapshot.version
                        );
                        assert!(
                            snapshot.version >= last_version,
                            "snapshot version regressed: {} after {}",
                            snapshot.version,
                            last_version
                        );
                        last_version = snapshot.version;
                        let prediction = predictor.predict(&input).expect("published");
                        assert!(prediction.score.is_finite());
                        reads += 1;
                    }
                    std::hint::spin_loop();
                }
                reads
            })
        })
        .collect();
    let (trace, _) = session.wait();
    stop.store(true, Ordering::Relaxed);
    let reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert_eq!(trace.epochs(), 40);
    assert!(reads > 0, "the read path made progress during training");
    // The final snapshot is exactly the final trained model state.
    let final_snapshot = predictor.snapshot().expect("published");
    assert_eq!(final_snapshot.epoch, 40);
    assert_eq!(final_snapshot.loss, trace.points.last().unwrap().loss);
    server.shutdown();
}

#[test]
fn tenants_over_one_dataset_share_layout_storage() {
    // Sessions admitted over tasks built from the same dataset must reuse
    // one set of materialized layouts — `Arc`'d storage, not copies.
    let dataset = Dataset::generate(PaperDataset::Reuters, 31);
    let handles_solo = dataset.matrix.storage_handles();
    let svm = AnalyticsTask::from_dataset(&dataset, ModelKind::Svm);
    let lr = AnalyticsTask::from_dataset(&dataset, ModelKind::Lr);
    assert!(svm.data.matrix.shares_storage_with(&lr.data.matrix));
    assert!(svm.data.matrix.shares_storage_with(&dataset.matrix));
    assert!(
        dataset.matrix.storage_handles() >= handles_solo + 2,
        "each tenant task holds a handle onto the one storage, not a copy"
    );

    let server = Server::builder(machine()).pool_workers(4).build();
    let a = server.admit(SessionSpec::new("svm", svm).plan(percore_plan()).epochs(2));
    let b = server.admit(SessionSpec::new("lr", lr).plan(percore_plan()).epochs(2));
    a.wait();
    b.wait();
    assert!(
        dataset.matrix.csr_materialized(),
        "the shared handle saw the layouts the sessions materialized"
    );
    server.shutdown();
}

#[test]
fn frontend_serves_concurrent_tenants_with_batching() {
    let dataset = Dataset::generate(PaperDataset::Reuters, 13);
    let server = Server::builder(machine()).pool_workers(4).build();
    let sessions: Vec<_> = [ModelKind::Svm, ModelKind::Lr]
        .into_iter()
        .map(|kind| {
            let task = AnalyticsTask::from_dataset(&dataset, kind);
            server.admit(
                SessionSpec::new(kind.name(), task)
                    .plan(percore_plan())
                    .epochs(3)
                    .execution(Execution::SharedPool),
            )
        })
        .collect();
    for session in &sessions {
        session.wait();
    }

    let frontend = Frontend::new(2, 16);
    let inputs = |seed: usize| -> Vec<SparseVector> {
        (0..50)
            .map(|i| SparseVector::from_parts(vec![((seed + i) % 11) as u32], vec![1.0]))
            .collect()
    };
    let tickets: Vec<Vec<Ticket>> = sessions
        .iter()
        .enumerate()
        .map(|(index, session)| frontend.submit_batch(session, inputs(index)))
        .collect();
    for (index, session_tickets) in tickets.into_iter().enumerate() {
        let expected_epoch = 3;
        for ticket in session_tickets {
            let reply = ticket.wait();
            assert!(reply.score.is_finite(), "session {index}");
            assert_eq!(reply.epoch, expected_epoch);
            assert!(reply.version > 0);
        }
    }
    for session in &sessions {
        let stats = session.stats();
        assert_eq!(stats.predictions, 50);
        assert!(stats.predictions_per_sec > 0.0);
        assert!(stats.p99_latency_us >= stats.p50_latency_us);
        assert_eq!(stats.staleness_epochs, 0);
    }
    assert!(
        frontend.batches() < frontend.requests(),
        "the drain loop batched same-session requests: {} batches / {} requests",
        frontend.batches(),
        frontend.requests()
    );
    frontend.shutdown();
    server.shutdown();
}

#[test]
fn server_admits_a_live_fed_session() {
    // Streaming ingest meets serving: a task whose matrix is a frozen
    // snapshot of a `LiveSource` is admitted like any other tenant, trains
    // to completion, and serves predictions — while the live source keeps
    // accepting rows for the *next* snapshot behind it.
    use dw_data::streamed_rows_into;
    use dw_matrix::{LiveSource, TempSpillDir};
    use dw_optim::TaskData;

    let dir = TempSpillDir::new("dw-serve-live").unwrap();
    let live = LiveSource::create(dir.file("live.dwp"), 48).unwrap();
    let labels = streamed_rows_into(48, 3, 27, 0..150, &mut &live);
    live.seal().unwrap();

    let task = AnalyticsTask::new(
        "live-tenant",
        TaskData::supervised(live.snapshot_matrix(1 << 20), labels),
        ModelKind::Svm,
    );
    let initial = task.initial_loss();
    let server = Server::builder(machine()).pool_workers(4).build();
    let session = server.admit(
        SessionSpec::new("live-tenant", task)
            .plan(percore_plan())
            .epochs(5)
            .seed(27),
    );

    // The admitted snapshot is frozen: rows arriving during training are
    // invisible to it but queue up for the next adoption.
    let (more_labels, _) = (
        streamed_rows_into(48, 3, 27, 150..180, &mut &live),
        live.seal().unwrap(),
    );
    assert_eq!(more_labels.len(), 30);
    assert_eq!(live.rows(), 180);

    let (trace, _) = session.wait();
    assert_eq!(trace.epochs(), 5);
    assert!(trace.best_loss() < initial, "the live-fed tenant trained");
    let predictor = session.predictor();
    let snapshot = predictor.snapshot().expect("model published");
    assert!(snapshot.is_consistent());
    server.shutdown();
}
