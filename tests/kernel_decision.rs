//! Integration tests for the per-plan kernel decision: wide variants are
//! deterministic and converge like the reference kernels, the index
//! encoding never perturbs a reference-path trace, and mid-run replans
//! switch kernels without losing the model.

use dimmwitted::{
    AccessMethod, AnalyticsTask, DataReplication, DimmWitted, ExecutionPlan, KernelDecision,
    ModelKind, ModelReplication, Optimizer, RunConfig, RunReport,
};
use dw_data::{Dataset, PaperDataset};
use dw_matrix::{IndexEncoding, KernelVariant};
use dw_numa::MachineTopology;
use dw_optim::ConvergenceTrace;

fn machine() -> MachineTopology {
    MachineTopology::local2()
}

fn svm_task() -> AnalyticsTask {
    AnalyticsTask::from_dataset(
        &Dataset::generate(PaperDataset::Reuters, 42),
        ModelKind::Svm,
    )
}

fn base_plan() -> ExecutionPlan {
    ExecutionPlan::new(
        &machine(),
        AccessMethod::RowWise,
        ModelReplication::PerNode,
        DataReplication::FullReplication,
    )
}

fn run(plan: ExecutionPlan) -> RunReport {
    DimmWitted::on(machine())
        .task(svm_task())
        .plan(plan)
        .config(RunConfig::quick(5))
        .build()
        .run()
}

/// FNV-1a over the initial loss and per-epoch loss bits (the same
/// trace-parity fingerprint the benches pin).
fn trace_hash(trace: &ConvergenceTrace) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    };
    eat(trace.initial_loss.to_bits());
    for point in &trace.points {
        eat(point.loss.to_bits());
    }
    hash
}

#[test]
fn default_plan_carries_the_reference_kernel() {
    let plan = base_plan();
    assert_eq!(plan.kernel, KernelDecision::default());
    assert_eq!(plan.kernel.variant, KernelVariant::Reference);
    assert_eq!(plan.kernel.encoding, IndexEncoding::U32);
}

#[test]
fn encoding_never_perturbs_a_reference_trace() {
    // The block-compressed index stream feeds the same single-accumulator
    // loop in the same order, so switching only the encoding must leave
    // the convergence trace bit-identical.
    let raw = run(base_plan());
    let encoded = run(base_plan().with_kernel(KernelDecision {
        variant: KernelVariant::Reference,
        encoding: IndexEncoding::DeltaU16,
    }));
    assert_eq!(trace_hash(&raw.trace), trace_hash(&encoded.trace));
}

#[test]
fn wide_plan_is_deterministic_and_converges_with_reference() {
    let wide_plan = || {
        base_plan().with_kernel(KernelDecision {
            variant: KernelVariant::Wide { lanes: 4 },
            encoding: IndexEncoding::DeltaU16,
        })
    };
    let a = run(wide_plan());
    let b = run(wide_plan());
    assert_eq!(
        trace_hash(&a.trace),
        trace_hash(&b.trace),
        "same wide plan must reproduce the same trace"
    );
    let reference = run(base_plan());
    let tolerance = 1e-6 * reference.final_loss().abs().max(1.0);
    assert!(
        (a.final_loss() - reference.final_loss()).abs() <= tolerance,
        "wide {} vs reference {}",
        a.final_loss(),
        reference.final_loss()
    );
}

#[test]
fn replan_switches_kernels_mid_run_without_losing_the_model() {
    let task = svm_task();
    let session = DimmWitted::on(machine())
        .task(task)
        .plan(base_plan())
        .config(RunConfig::quick(6))
        .build();
    let mut stream = session.stream();
    // Two epochs on the reference kernels...
    for _ in 0..2 {
        assert!(stream.next().is_some());
    }
    let loss_before = stream.trace().points.last().expect("two epochs ran").loss;
    // ...then flip to wide kernels over the compressed encoding, mid-run.
    stream.replan(base_plan().with_kernel(KernelDecision {
        variant: KernelVariant::Wide { lanes: 8 },
        encoding: IndexEncoding::DeltaU16,
    }));
    let report = stream.run_to_end();
    assert_eq!(report.plan.kernel.variant, KernelVariant::Wide { lanes: 8 });
    assert_eq!(
        report.trace.points.len(),
        6,
        "budget continues across replan"
    );
    assert!(
        report.final_loss() <= loss_before,
        "loss kept improving after the kernel switch: {} vs {}",
        report.final_loss(),
        loss_before
    );
}

#[test]
fn optimizer_records_a_kernel_decision() {
    // Reuters at generation scale: the column domain fits a u16 block
    // window, so the optimizer picks the compressed encoding; rows average
    // ~12 stored elements, below the wide bar, so the variant stays
    // reference (the trace-parity anchor).
    let optimizer = Optimizer::new(machine());
    let plan = optimizer.choose_plan(&svm_task());
    assert_eq!(plan.kernel.encoding, IndexEncoding::DeltaU16);
    assert_eq!(plan.kernel.variant, KernelVariant::Reference);

    // The dense datasets keep raw u32 indexing: their layout decision is
    // the dense row store, which feeds no sparse index stream at all.
    let music =
        AnalyticsTask::from_dataset(&Dataset::generate(PaperDataset::Music, 42), ModelKind::Svm);
    let plan = optimizer.choose_plan(&music);
    assert_eq!(plan.kernel.encoding, IndexEncoding::U32);
}
