//! Integration tests asserting the paper's three tradeoffs end-to-end: the
//! directions of the access-method, model-replication and data-replication
//! effects, and the behaviour of the competitor-system emulations.

use dimmwitted::{
    sim_exec::simulate_epoch, AccessMethod, AnalyticsTask, DataReplication, ExecutionPlan,
    ModelKind, ModelReplication, RunConfig, Runner,
};
use dw_baselines::{parallel_sum_throughput, run_system, System};
use dw_data::{Dataset, PaperDataset};
use dw_numa::MachineTopology;

fn machine() -> MachineTopology {
    MachineTopology::local2()
}

fn task(dataset: PaperDataset, kind: ModelKind) -> AnalyticsTask {
    AnalyticsTask::from_dataset(&Dataset::generate(dataset, 19), kind)
}

#[test]
fn access_method_tradeoff_has_a_crossover() {
    // Section 3.2 / Figure 7: row-wise epochs are cheaper for text-like
    // data, column-to-row epochs are cheaper for graph data — no method
    // dominates.  Each task is simulated at the model replication the
    // Section 3.3 rule of thumb assigns it: PerNode for the SGD-family text
    // model, PerMachine for the SCD-family graph model (it is the shared
    // replica's write contention that columnar access avoids).
    let m = machine();
    let seconds = |t: &AnalyticsTask, access, replication| {
        let plan = ExecutionPlan::new(&m, access, replication, DataReplication::Sharding);
        simulate_epoch(&t.data.stats(), t.objective.row_update_density(), &plan, &m).seconds
    };
    let text = task(PaperDataset::Rcv1, ModelKind::Svm);
    let graph = task(PaperDataset::AmazonLp, ModelKind::Lp);
    assert!(
        seconds(&text, AccessMethod::RowWise, ModelReplication::PerNode)
            < seconds(&text, AccessMethod::ColumnToRow, ModelReplication::PerNode)
    );
    assert!(
        seconds(
            &graph,
            AccessMethod::ColumnToRow,
            ModelReplication::PerMachine
        ) < seconds(&graph, AccessMethod::RowWise, ModelReplication::PerMachine)
    );
}

#[test]
fn model_replication_tradeoff_statistical_vs_hardware() {
    // Figure 8: PerMachine needs no more epochs than PerCore to reach a
    // given loss, but PerNode finishes an epoch much faster than PerMachine.
    let m = machine();
    let runner = Runner::new(m.clone());
    let t = task(PaperDataset::Rcv1, ModelKind::Svm);
    let config = RunConfig::quick(6);
    let report_of = |strategy| {
        runner.run_with_plan(
            &t,
            &ExecutionPlan::new(
                &m,
                AccessMethod::RowWise,
                strategy,
                DataReplication::Sharding,
            ),
            &config,
        )
    };
    let per_machine = report_of(ModelReplication::PerMachine);
    let per_node = report_of(ModelReplication::PerNode);
    let per_core = report_of(ModelReplication::PerCore);
    // Hardware efficiency: PerNode epochs are several times cheaper.
    assert!(per_machine.seconds_per_epoch > 2.0 * per_node.seconds_per_epoch);
    // Statistical efficiency: the single replica is at least as good per
    // epoch as the shared-nothing extreme.
    assert!(per_machine.final_loss() <= per_core.final_loss() * 1.1);
    // PMU story: PerMachine produces far more cross-node traffic.
    assert!(
        per_machine
            .counters_per_epoch
            .remote_dram_ratio(&per_node.counters_per_epoch)
            > 3.0
    );
}

#[test]
fn data_replication_tradeoff() {
    // Figure 9: FullReplication costs more per epoch but needs no more
    // epochs than Sharding to reach a tight tolerance.
    let m = machine();
    let runner = Runner::new(m.clone());
    let t = task(PaperDataset::Reuters, ModelKind::Svm);
    let optimum = runner.estimate_optimum(&t, 6);
    let config = RunConfig::quick(8);
    let report_of = |strategy| {
        runner.run_with_plan(
            &t,
            &ExecutionPlan::new(
                &m,
                AccessMethod::RowWise,
                ModelReplication::PerNode,
                strategy,
            ),
            &config,
        )
    };
    let full = report_of(DataReplication::FullReplication);
    let shard = report_of(DataReplication::Sharding);
    assert!(full.seconds_per_epoch > shard.seconds_per_epoch);
    let full_epochs = full.epochs_to_loss(optimum, 0.1).unwrap_or(usize::MAX);
    let shard_epochs = shard.epochs_to_loss(optimum, 0.1).unwrap_or(usize::MAX);
    assert!(
        full_epochs <= shard_epochs,
        "FullReplication epochs {full_epochs} vs Sharding {shard_epochs}"
    );
}

#[test]
fn importance_sampling_processes_less_data_per_epoch() {
    let m = machine();
    let runner = Runner::new(m.clone());
    let t = task(PaperDataset::Music, ModelKind::Ls);
    let config = RunConfig::quick(3);
    let full = runner.run_with_plan(
        &t,
        &ExecutionPlan::new(
            &m,
            AccessMethod::RowWise,
            ModelReplication::PerNode,
            DataReplication::FullReplication,
        ),
        &config,
    );
    let importance = runner.run_with_plan(
        &t,
        &ExecutionPlan::new(
            &m,
            AccessMethod::RowWise,
            ModelReplication::PerNode,
            DataReplication::Importance { epsilon: 0.1 },
        ),
        &config,
    );
    assert!(importance.seconds_per_epoch <= full.seconds_per_epoch);
    assert!(importance.final_loss() < t.initial_loss());
}

#[test]
fn dimmwitted_dominates_every_baseline_on_modelled_time_to_loss() {
    // The headline Figure 11 claim at our scale: for an SVM text task the
    // DimmWitted plan reaches 50% of the optimal loss in no more modelled
    // time than any competitor emulation.
    let m = machine();
    let t = task(PaperDataset::Reuters, ModelKind::Svm);
    let runner = Runner::new(m.clone());
    let optimum = runner.estimate_optimum(&t, 6);
    let config = RunConfig::quick(6);
    let time_of = |system| {
        run_system(system, &t, &m, &config)
            .seconds_to_loss(optimum, 0.5)
            .unwrap_or(f64::INFINITY)
    };
    let dw = time_of(System::DimmWitted);
    for competitor in System::figure11_competitors() {
        assert!(
            dw <= time_of(competitor),
            "DimmWitted should not trail {competitor}"
        );
    }
}

#[test]
fn parallel_sum_throughput_ordering_matches_figure13() {
    let m = machine();
    let dw = parallel_sum_throughput(System::DimmWitted, &m);
    let hogwild = parallel_sum_throughput(System::Hogwild, &m);
    let graphlab = parallel_sum_throughput(System::GraphLab, &m);
    let mllib = parallel_sum_throughput(System::MLlib, &m);
    assert!(dw > hogwild);
    assert!(hogwild > graphlab);
    assert!(graphlab > mllib);
    // The paper's measured gap between DimmWitted and Hogwild! is ~1.6x on
    // local2; the model should land in a sane band around it.
    let gap = dw / hogwild;
    assert!((1.1..=6.0).contains(&gap), "gap {gap}");
}

#[test]
fn pernode_advantage_grows_with_socket_count() {
    // Figure 16(a): the PerMachine/PerNode per-epoch gap widens on larger
    // machines.
    let t = task(PaperDataset::Rcv1, ModelKind::Svm);
    let gap_on = |m: &MachineTopology| {
        let pm = simulate_epoch(
            &t.data.stats(),
            t.objective.row_update_density(),
            &ExecutionPlan::new(
                m,
                AccessMethod::RowWise,
                ModelReplication::PerMachine,
                DataReplication::Sharding,
            ),
            m,
        )
        .seconds;
        let pn = simulate_epoch(
            &t.data.stats(),
            t.objective.row_update_density(),
            &ExecutionPlan::new(
                m,
                AccessMethod::RowWise,
                ModelReplication::PerNode,
                DataReplication::Sharding,
            ),
            m,
        )
        .seconds;
        pm / pn
    };
    assert!(gap_on(&MachineTopology::local8()) > gap_on(&MachineTopology::local2()));
}
